"""End-to-end tests for the streaming ingestion pipeline."""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core import artifacts
from repro.core.config import TiptoeConfig
from repro.corpus.source import ListDocumentSource, SyntheticDocumentSource
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.ingest import IngestConfig, run_ingest

CORPUS_CFG = SyntheticCorpusConfig(
    num_docs=220, num_topics=6, vocab_size=350, seed=13
)
CONFIG = TiptoeConfig(target_cluster_size=16)
INGEST = IngestConfig(batch_size=48, sample_size=256)

STAGES = ("source", "filter", "model", "embed", "cluster", "pack", "encrypt")


def source(batch_size=48):
    return SyntheticDocumentSource(CORPUS_CFG, batch_size=batch_size)


@pytest.fixture(scope="module")
def built(tmp_path_factory):
    root = tmp_path_factory.mktemp("ingest")
    report = run_ingest(
        source(), CONFIG, root / "out", spool_dir=root / "spool",
        ingest=INGEST,
    )
    return root, report


class TestStreamingBuild:
    def test_all_stages_run_in_order(self, built):
        _, report = built
        assert tuple(s.name for s in report.stages) == STAGES
        assert all(s.status == "computed" for s in report.stages)

    def test_artifact_loads_and_matches_the_corpus(self, built):
        root, report = built
        index = artifacts.load_index(root / "out")
        corpus = SyntheticCorpus.generate(CORPUS_CFG)
        assert index.num_docs == corpus.num_docs == report.num_docs
        assert report.generation_tag == artifacts.generation_tag(root / "out")
        assert index.boundary_threshold is not None
        assert index.doc_digests.shape == (corpus.num_docs, 32)

    def test_crypto_matches_monolithic_preprocess(self, built):
        """The per-cluster accumulated hint IS scheme.preprocess(M)."""
        root, _ = built
        index = artifacts.load_index(root / "out")
        direct = index.ranking_scheme.preprocess(index.layout.matrix)
        assert np.array_equal(index.ranking_prep.hint, direct.hint)
        assert np.array_equal(
            index.ranking_prep.switched_hint, direct.switched_hint
        )

    def test_rerun_is_fully_cached_and_identical(self, built):
        root, report = built
        again = run_ingest(
            source(), CONFIG, root / "out", spool_dir=root / "spool",
            ingest=INGEST,
        )
        assert all(s.status == "cached" for s in again.stages)
        assert again.artifact_digest == report.artifact_digest

    def test_changing_config_invalidates_downstream(self, built):
        root, _ = built
        report = run_ingest(
            source(), CONFIG, root / "out2", spool_dir=root / "spool",
            ingest=IngestConfig(batch_size=48, sample_size=256, seed=1),
        )
        # Same corpus -> source stage is reusable; a different pipeline
        # seed changes the model stage and everything after it.
        assert report.stage("source").status == "cached"
        assert report.stage("model").status == "computed"
        assert report.stage("encrypt").status == "computed"


class TestBatchSizeInvariance:
    def test_artifact_digest_is_independent_of_batch_size(self, tmp_path):
        digests = set()
        for batch_size in (32, 96):
            report = run_ingest(
                source(batch_size),
                CONFIG,
                tmp_path / f"out{batch_size}",
                spool_dir=tmp_path / f"spool{batch_size}",
                ingest=IngestConfig(
                    batch_size=batch_size, sample_size=256
                ),
            )
            digests.add(report.artifact_digest)
        assert len(digests) == 1


class TestWorkerParity:
    def test_multiprocess_embed_matches_inline(self, tmp_path, built):
        _, inline = built
        report = run_ingest(
            source(), CONFIG, tmp_path / "out", spool_dir=tmp_path / "spool",
            ingest=IngestConfig(batch_size=48, sample_size=256, workers=2),
        )
        assert report.artifact_digest == inline.artifact_digest


class TestFilterStage:
    def test_drops_empty_and_duplicate_documents(self, tmp_path):
        texts = ["alpha beta gamma delta"] * 3 + [
            "   ",
            "epsilon zeta eta theta",
        ] * 2 + [f"word{i} things stuff more" for i in range(20)]
        urls = [f"https://e.com/{i}" for i in range(len(texts))]
        # Duplicate URLs too, so the dup rule (digest over text+url)
        # actually fires for the repeated documents.
        urls[1] = urls[2] = urls[0]
        urls[5] = urls[3]
        report = run_ingest(
            ListDocumentSource(texts, urls, batch_size=4),
            TiptoeConfig(embedding_dim=6, pca_dim=3, target_cluster_size=8),
            tmp_path / "out",
            spool_dir=tmp_path / "spool",
            ingest=IngestConfig(batch_size=4, sample_size=8),
        )
        counters = report.counters("filter")
        assert counters["dropped_empty"] == 2
        assert counters["dropped_dup"] == 2
        assert counters["docs_out"] == len(texts) - 4
        assert report.num_docs == len(texts) - 4


class TestKillResume:
    def test_resumes_from_last_checkpoint_after_kill(self, tmp_path):
        """SIGKILL-equivalent mid-pipeline, then rerun: the completed
        prefix is reused, the rest recomputed, result bit-identical."""
        script = textwrap.dedent(
            """
            import os
            import repro.ingest.pipeline as pipeline
            from repro.core.config import TiptoeConfig
            from repro.corpus.source import SyntheticDocumentSource
            from repro.corpus.synthetic import SyntheticCorpusConfig
            from repro.ingest import IngestConfig, run_ingest

            def die_after_embed(stage):
                if stage == "embed":
                    os._exit(7)

            pipeline._STAGE_HOOK = die_after_embed
            run_ingest(
                SyntheticDocumentSource(
                    SyntheticCorpusConfig(
                        num_docs=220, num_topics=6, vocab_size=350, seed=13
                    ),
                    batch_size=48,
                ),
                TiptoeConfig(target_cluster_size=16),
                %r,
                spool_dir=%r,
                ingest=IngestConfig(batch_size=48, sample_size=256),
            )
            raise SystemExit("pipeline was supposed to die mid-run")
            """
        ) % (str(tmp_path / "out"), str(tmp_path / "spool"))
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True
        )
        assert proc.returncode == 7, proc.stderr.decode()

        resumed = run_ingest(
            source(), CONFIG, tmp_path / "out",
            spool_dir=tmp_path / "spool", ingest=INGEST,
        )
        for name in ("source", "filter", "model", "embed"):
            assert resumed.stage(name).status == "cached", name
        for name in ("cluster", "pack", "encrypt"):
            assert resumed.stage(name).status == "computed", name

        clean = run_ingest(
            source(), CONFIG, tmp_path / "clean",
            spool_dir=tmp_path / "spool2", ingest=INGEST,
        )
        assert resumed.artifact_digest == clean.artifact_digest


class TestValidation:
    def test_rejects_positional_url_mode(self, tmp_path):
        with pytest.raises(ValueError, match="content-grouped"):
            run_ingest(
                source(),
                TiptoeConfig(group_urls_by_content=False),
                tmp_path / "out",
                spool_dir=tmp_path / "spool",
            )

    def test_ingest_config_validation(self):
        with pytest.raises(ValueError):
            IngestConfig(batch_size=0)
        with pytest.raises(ValueError):
            IngestConfig(sample_size=1)
        with pytest.raises(ValueError):
            IngestConfig(kmeans_epochs=0)
        with pytest.raises(ValueError):
            IngestConfig(kmeans_batch=1)
        with pytest.raises(ValueError):
            IngestConfig(workers=-1)
