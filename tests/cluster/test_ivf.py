"""Tests for the IVF approximate-NN index."""

import numpy as np
import pytest

from repro.cluster.ivf import IvfIndex


def unit_rows(rng, n, d):
    x = rng.standard_normal((n, d))
    return x / np.linalg.norm(x, axis=1, keepdims=True)


@pytest.fixture(scope="module")
def ivf():
    rng = np.random.default_rng(0)
    data = unit_rows(rng, 300, 10)
    return IvfIndex.build(data, target_cluster_size=20, rng=rng), data


class TestIvf:
    def test_own_vector_is_top_hit(self, ivf):
        index, data = ivf
        for doc in (0, 100, 299):
            assert index.search(data[doc], k=1, nprobe=1) == [doc]

    def test_full_probe_equals_exhaustive(self, ivf):
        index, data = ivf
        q = data[5]
        assert index.search(q, k=10, nprobe=index.nlist) == (
            index.exhaustive_search(q, k=10)
        )

    def test_recall_improves_with_nprobe(self, ivf):
        index, data = ivf
        rng = np.random.default_rng(1)
        queries = unit_rows(rng, 30, 10)
        recalls = [
            index.recall_at_k(queries, k=10, nprobe=p) for p in (1, 2, 4, 8)
        ]
        assert recalls[-1] >= recalls[0]
        assert recalls[-1] > 0.5
        # Monotone up to small noise.
        for lo, hi in zip(recalls, recalls[1:]):
            assert hi >= lo - 0.05

    def test_nprobe_validation(self, ivf):
        index, data = ivf
        with pytest.raises(ValueError):
            index.search(data[0], nprobe=0)
        with pytest.raises(ValueError):
            index.search(data[0], nprobe=index.nlist + 1)

    def test_duplicated_docs_not_repeated(self):
        rng = np.random.default_rng(2)
        data = unit_rows(rng, 100, 6)
        index = IvfIndex.build(
            data, target_cluster_size=12, rng=rng, boundary_fraction=0.3
        )
        out = index.search(data[0], k=50, nprobe=index.nlist)
        assert len(out) == len(set(out))


class TestMultiprobeQuality:
    """SS8.2: more probed clusters -> better quality, linear cost."""

    def test_probes_lift_mrr(self, corpus, query_benchmark):
        from repro.core.config import TiptoeConfig
        from repro.evalx.metrics import mrr_at_k
        from repro.evalx.quality import TiptoeQualitySim

        sim1 = TiptoeQualitySim.build(
            corpus.texts(),
            corpus.urls(),
            TiptoeConfig(target_cluster_size=8),
            rng=np.random.default_rng(3),
        )
        sim4 = TiptoeQualitySim(index=sim1.index, mode="cluster+batch", probes=4)
        targets = [q.target_doc_id for q in query_benchmark.queries]
        mrr1 = mrr_at_k(
            [sim1.rank(q.text) for q in query_benchmark.queries], targets
        )
        mrr4 = mrr_at_k(
            [sim4.rank(q.text) for q in query_benchmark.queries], targets
        )
        assert mrr4 >= mrr1

    def test_probe_validation(self, corpus):
        from repro.core.config import TiptoeConfig
        from repro.evalx.quality import TiptoeQualitySim

        sim = TiptoeQualitySim.build(
            corpus.texts()[:50],
            corpus.urls()[:50],
            TiptoeConfig(),
            rng=np.random.default_rng(4),
        )
        with pytest.raises(ValueError):
            TiptoeQualitySim(index=sim.index, probes=0)
