"""Tests for cluster balancing and the cluster index."""

import numpy as np
import pytest

from repro.cluster import ClusterIndex, split_oversized, spherical_kmeans


def unit_rows(rng, n, d):
    x = rng.standard_normal((n, d))
    return x / np.linalg.norm(x, axis=1, keepdims=True)


class TestSplitOversized:
    def test_enforces_max_size(self):
        rng = np.random.default_rng(0)
        data = unit_rows(rng, 120, 6)
        result = spherical_kmeans(data, 2, rng)
        centroids, labels = split_oversized(
            data, result.centroids, result.labels, max_size=20, rng=rng
        )
        sizes = np.bincount(labels, minlength=centroids.shape[0])
        assert sizes.max() <= 20
        assert sizes.sum() == 120

    def test_compliant_clusters_untouched(self):
        rng = np.random.default_rng(1)
        data = unit_rows(rng, 30, 6)
        result = spherical_kmeans(data, 3, rng)
        centroids, labels = split_oversized(
            data, result.centroids, result.labels, max_size=30, rng=rng
        )
        assert centroids.shape[0] == 3

    def test_degenerate_identical_points_fall_back_to_chunking(self):
        rng = np.random.default_rng(2)
        data = np.tile(np.array([[1.0, 0.0]]), (50, 1))
        centroids, labels = split_oversized(
            data, np.array([[1.0, 0.0]]), np.zeros(50, dtype=np.int64),
            max_size=10, rng=rng,
        )
        assert np.bincount(labels).max() <= 10

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            split_oversized(
                np.zeros((2, 2)), np.zeros((1, 2)),
                np.zeros(2, dtype=np.int64), 0, np.random.default_rng(0),
            )


class TestClusterIndex:
    @pytest.fixture(scope="class")
    def index(self):
        rng = np.random.default_rng(3)
        data = unit_rows(rng, 200, 8)
        return ClusterIndex.build(data, target_cluster_size=25, rng=rng), data

    def test_every_document_assigned(self, index):
        idx, data = index
        assert all(len(c) >= 1 for c in idx.doc_to_clusters)
        covered = {d for members in idx.assignments for d in members}
        assert covered == set(range(200))

    def test_boundary_duplication_near_twenty_percent(self, index):
        idx, _ = index
        assert 1.15 <= idx.duplication_overhead() <= 1.25

    def test_no_duplication_when_disabled(self):
        rng = np.random.default_rng(4)
        data = unit_rows(rng, 100, 8)
        idx = ClusterIndex.build(
            data, target_cluster_size=20, rng=rng, boundary_fraction=0.0
        )
        assert idx.duplication_overhead() == 1.0

    def test_nearest_cluster_contains_similar_documents(self, index):
        idx, data = index
        # A query equal to a document embedding should pick one of that
        # document's own clusters.
        for doc in (0, 50, 150):
            assert idx.nearest_cluster(data[doc]) in idx.doc_to_clusters[doc]

    def test_nearest_clusters_ordering(self, index):
        idx, data = index
        top2 = idx.nearest_clusters(data[0], 2)
        assert top2[0] == idx.nearest_cluster(data[0])
        assert len(top2) == 2 and top2[0] != top2[1]

    def test_cluster_sizes_bounded(self, index):
        idx, _ = index
        assert idx.max_cluster_size() <= int(25 * 1.5) + 25 * 0.2 * 10

    def test_centroid_bytes(self, index):
        idx, _ = index
        assert idx.centroid_bytes() == idx.centroids.size * 4
        assert idx.centroid_bytes(compressed=True) == idx.centroids.size

    def test_invalid_boundary_fraction(self):
        with pytest.raises(ValueError):
            ClusterIndex.build(
                np.eye(4), 2, np.random.default_rng(0), boundary_fraction=1.0
            )

    def test_single_cluster_corpus(self):
        rng = np.random.default_rng(5)
        data = unit_rows(rng, 10, 4)
        idx = ClusterIndex.build(data, target_cluster_size=100, rng=rng)
        assert idx.num_clusters == 1
        assert idx.duplication_overhead() == 1.0
