"""Tests for spherical k-means."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import kmeans_plus_plus_init, spherical_kmeans


def make_blobs(rng, k=4, per=30, dim=8, spread=0.05):
    """Well-separated unit-vector blobs with known memberships."""
    centers = rng.standard_normal((k, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    points = []
    truth = []
    for c in range(k):
        pts = centers[c] + spread * rng.standard_normal((per, dim))
        points.append(pts / np.linalg.norm(pts, axis=1, keepdims=True))
        truth += [c] * per
    return np.concatenate(points), np.array(truth)


class TestSphericalKmeans:
    def test_recovers_separated_blobs(self):
        rng = np.random.default_rng(0)
        data, truth = make_blobs(rng)
        result = spherical_kmeans(data, 4, rng)
        # Every true blob maps to exactly one found cluster.
        for c in range(4):
            labels = result.labels[truth == c]
            assert len(set(labels.tolist())) == 1

    def test_centroids_are_unit_norm(self):
        rng = np.random.default_rng(1)
        data, _ = make_blobs(rng)
        result = spherical_kmeans(data, 4, rng)
        assert np.allclose(np.linalg.norm(result.centroids, axis=1), 1.0)

    def test_sample_training_still_assigns_all_points(self):
        rng = np.random.default_rng(2)
        data, _ = make_blobs(rng, per=50)
        result = spherical_kmeans(data, 4, rng, sample_size=40)
        assert result.labels.shape == (200,)
        assert result.cluster_sizes().sum() == 200

    def test_k_equals_n(self):
        rng = np.random.default_rng(3)
        data, _ = make_blobs(rng, k=2, per=3)
        result = spherical_kmeans(data, 6, rng)
        assert result.k == 6

    def test_invalid_k_rejected(self):
        rng = np.random.default_rng(4)
        data = rng.standard_normal((5, 3))
        with pytest.raises(ValueError):
            spherical_kmeans(data, 0, rng)
        with pytest.raises(ValueError):
            spherical_kmeans(data, 6, rng)

    def test_deterministic_under_seed(self):
        data, _ = make_blobs(np.random.default_rng(5))
        r1 = spherical_kmeans(data, 4, np.random.default_rng(99))
        r2 = spherical_kmeans(data, 4, np.random.default_rng(99))
        assert np.array_equal(r1.labels, r2.labels)


class TestKmeansPlusPlus:
    def test_initial_centroids_are_data_points(self):
        rng = np.random.default_rng(6)
        data, _ = make_blobs(rng)
        init = kmeans_plus_plus_init(data, 4, rng)
        for c in init:
            assert np.min(np.linalg.norm(data - c, axis=1)) < 1e-12

    def test_spreads_across_blobs(self):
        rng = np.random.default_rng(7)
        data, truth = make_blobs(rng, spread=0.01)
        init = kmeans_plus_plus_init(data, 4, rng)
        # Seeds should hit at least 3 of the 4 well-separated blobs.
        seed_blobs = set()
        for c in init:
            idx = int(np.argmin(np.linalg.norm(data - c, axis=1)))
            seed_blobs.add(int(truth[idx]))
        assert len(seed_blobs) >= 3


@given(st.integers(1, 5), st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_every_point_gets_a_label_property(k, seed):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((20, 4))
    result = spherical_kmeans(data, k, rng)
    assert result.labels.min() >= 0
    assert result.labels.max() < k
