"""The global on/off switch and its no-op fast path, plus the report."""

import pytest

from repro.obs import ManualClock, MetricsRegistry, Tracer, render_report
from repro.obs import runtime as obs


class TestDisabled:
    def test_disabled_is_the_default(self):
        assert not obs.enabled()
        assert obs.tracer() is None and obs.metrics() is None

    def test_span_is_a_noop_yielding_none(self):
        with obs.span("anything", rows=3) as sp:
            assert sp is None

    def test_noop_span_object_is_shared(self):
        # The disabled fast path allocates nothing per call.
        assert obs.span("a") is obs.span("b")

    def test_kernel_timer_counters_and_histograms_are_noops(self):
        with obs.kernel_timer("lwe.matmul"):
            pass
        obs.observe("h", 1.0)
        obs.count("c")
        assert obs.current_span() is None

    def test_noop_span_does_not_swallow_exceptions(self):
        with pytest.raises(KeyError):
            with obs.span("x"):
                raise KeyError("boom")


class TestEnabled:
    def test_enable_returns_live_tracer_and_registry(self):
        tracer, registry = obs.enable(clock=ManualClock())
        assert obs.enabled()
        assert obs.tracer() is tracer and obs.metrics() is registry

    def test_spans_flow_to_the_enabled_tracer(self):
        tracer, _ = obs.enable(clock=ManualClock())
        with obs.span("root") as root:
            assert obs.current_span() is root
            with obs.span("inner", n=2) as inner:
                assert inner.attrs == {"n": 2}
        assert tracer.last_trace() is root

    def test_metrics_flow_to_the_enabled_registry(self):
        _, registry = obs.enable(clock=ManualClock())
        obs.count("queries", 3)
        obs.observe("lat", 0.5)
        with obs.kernel_timer("ntt.forward"):
            pass
        assert registry.counter("queries").value == 3
        assert registry.histogram("lat").count == 1
        assert "kernel.ntt.forward" in registry.names()

    def test_enable_accepts_prebuilt_instances(self):
        clock = ManualClock()
        mine = Tracer(clock=clock)
        reg = MetricsRegistry(clock=clock)
        tracer, registry = obs.enable(tracer=mine, metrics=reg)
        assert tracer is mine and registry is reg

    def test_disable_restores_the_noop_path(self):
        obs.enable(clock=ManualClock())
        obs.disable()
        assert not obs.enabled()
        with obs.span("x") as sp:
            assert sp is None

    def test_traced_decorator_names_and_wraps(self):
        tracer, _ = obs.enable(clock=ManualClock())

        @obs.traced("my.op")
        def compute(x):
            """docstring survives"""
            return x + 1

        assert compute(1) == 2
        assert compute.__doc__ == "docstring survives"
        assert tracer.last_trace().name == "my.op"

    def test_traced_decorator_defaults_to_qualname(self):
        tracer, _ = obs.enable(clock=ManualClock())

        @obs.traced()
        def helper():
            return None

        helper()
        assert "helper" in tracer.last_trace().name


class TestRenderReport:
    def test_report_renders_all_sections(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        registry = MetricsRegistry(clock=clock)
        with tracer.span("client.search"):
            clock.advance(0.25)
            with tracer.span("ranking", workers=2):
                clock.advance(0.5)
        registry.counter("rpc.calls").inc(4)
        registry.gauge("workers.alive").set(4)
        registry.histogram("kernel.lwe.matmul").observe(0.001)
        text = render_report(metrics=registry, trace=tracer.last_trace())
        assert "client.search" in text
        assert "ranking" in text and "workers=2" in text
        assert "kernel.lwe.matmul" in text
        assert "rpc.calls" in text
        assert "workers.alive" in text

    def test_report_with_nothing_enabled(self):
        assert isinstance(render_report(), str)
