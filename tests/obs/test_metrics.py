"""Counters, gauges, histograms, and exact percentiles."""

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    ManualClock,
    MetricsRegistry,
    percentile,
)


class TestPercentile:
    def test_median_of_odd_set(self):
        assert percentile([3, 1, 2], 0.5) == 2.0

    def test_interpolates_between_order_statistics(self):
        assert percentile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_endpoints(self):
        data = [5.0, 1.0, 3.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_rank_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.counter("c").value == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_gauge_holds_last_value(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3)
        reg.gauge("g").set(1.5)
        assert reg.gauge("g").value == 1.5


class TestHistogram:
    def test_default_buckets_span_us_to_100s(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(1e2)

    def test_count_sum_mean(self):
        h = Histogram("h")
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(0.006)
        assert h.mean == pytest.approx(0.002)

    def test_quantiles_clamped_to_observed_range(self):
        h = Histogram("h")
        h.observe(0.5)
        # One sample: every quantile is that sample, not a bucket edge.
        assert h.p50 == 0.5
        assert h.p99 == 0.5

    def test_quantile_ordering(self):
        h = Histogram("h")
        for i in range(100):
            h.observe(0.001 * (i + 1))
        assert h.p50 <= h.p95 <= h.p99
        assert 0.001 <= h.p50 <= 0.1

    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram("h")
        assert h.p50 is None
        assert h.mean is None

    def test_overflow_bucket_catches_huge_values(self):
        h = Histogram("h")
        h.observe(1e6)  # beyond the last bound
        assert h.count == 1
        assert h.p99 == 1e6

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_summary_is_json_ready(self):
        h = Histogram("h")
        h.observe(0.25)
        s = h.summary()
        assert s["count"] == 1 and s["min"] == s["max"] == 0.25


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_timer_uses_the_injected_clock(self):
        clock = ManualClock()
        reg = MetricsRegistry(clock=clock)
        with reg.timer("op.seconds"):
            clock.advance(0.125)
        h = reg.histogram("op.seconds")
        assert h.count == 1
        assert h.total == pytest.approx(0.125)

    def test_snapshot_partitions_by_kind(self):
        reg = MetricsRegistry(clock=ManualClock())
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ("a", "b")
