"""Obs tests never leak global state into the rest of the suite."""

import pytest

from repro.obs import runtime


@pytest.fixture(autouse=True)
def _reset_obs_globals():
    runtime.disable()
    yield
    runtime.disable()
