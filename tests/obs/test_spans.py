"""Span/trace semantics under a deterministic manual clock."""

import threading

import pytest

from repro.obs import ManualClock, Tracer


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def tracer(clock):
    return Tracer(clock=clock)


class TestNesting:
    def test_child_nests_under_ambient_parent(self, tracer, clock):
        with tracer.span("root") as root:
            clock.advance(1.0)
            with tracer.span("child") as child:
                clock.advance(0.5)
            clock.advance(0.25)
        assert root.children == [child]
        assert root.duration == pytest.approx(1.75)
        assert child.duration == pytest.approx(0.5)
        assert child.start - root.start == pytest.approx(1.0)

    def test_sibling_order_is_preserved(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        assert root.child_names() == ["a", "b"]

    def test_root_span_becomes_a_trace(self, tracer):
        with tracer.span("query"):
            pass
        assert tracer.last_trace().name == "query"
        assert len(tracer.traces()) == 1

    def test_nested_span_is_not_its_own_trace(self, tracer):
        with tracer.span("root"):
            with tracer.span("inner"):
                pass
        assert [t.name for t in tracer.traces()] == ["root"]

    def test_current_tracks_the_innermost_span(self, tracer):
        assert tracer.current() is None
        with tracer.span("root") as root:
            assert tracer.current() is root
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is root
        assert tracer.current() is None


class TestAttributes:
    def test_attrs_from_open_and_set(self, tracer):
        with tracer.span("s", rows=3) as sp:
            sp.set(bytes_up=128)
        assert sp.attrs == {"rows": 3, "bytes_up": 128}

    def test_error_records_exception_type_only(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("secret-laden message")
        sp = tracer.last_trace()
        assert sp.attrs["error"] == "RuntimeError"
        assert "secret" not in str(sp.attrs.values())

    def test_find_collects_descendants_by_name(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("worker"):
                pass
            with tracer.span("worker"):
                pass
        assert len(root.find("worker")) == 2
        assert root.find("root") == [root]


class TestThreads:
    def test_explicit_parent_attaches_worker_spans(self, tracer, clock):
        """Pool workers have no ambient stack; parent= wires them in."""
        with tracer.span("coord") as coord:

            def work():
                with tracer.span("worker", parent=coord):
                    pass

            threads = [threading.Thread(target=work) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(coord.find("worker")) == 4
        # The workers attached to the coordinator, not to the trace list.
        assert [t.name for t in tracer.traces()] == ["coord"]

    def test_threads_do_not_share_the_ambient_stack(self, tracer):
        seen = {}

        def work():
            seen["current"] = tracer.current()

        with tracer.span("root"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        assert seen["current"] is None


class TestBounds:
    def test_trace_buffer_is_bounded(self, clock):
        tracer = Tracer(clock=clock, max_traces=3)
        for i in range(7):
            with tracer.span(f"t{i}"):
                pass
        assert [t.name for t in tracer.traces()] == ["t4", "t5", "t6"]

    def test_max_traces_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(max_traces=0)

    def test_clear_empties_the_buffer(self, tracer):
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.traces() == ()
        assert tracer.last_trace() is None


class TestManualClock:
    def test_advance_moves_time_forward(self, clock):
        t0 = clock()
        clock.advance(2.5)
        assert clock() - t0 == pytest.approx(2.5)

    def test_negative_advance_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.advance(-1.0)
