"""Trace and BENCH JSON exporters: schemas, offsets, round trips."""

import json

import pytest

from repro.obs import (
    BENCH_SCHEMA,
    TRACE_SCHEMA,
    ManualClock,
    MetricsRegistry,
    Tracer,
    dump_trace,
    metrics_to_dict,
    read_bench_json,
    span_to_dict,
    trace_to_dict,
    write_bench_json,
)


@pytest.fixture()
def trace():
    clock = ManualClock(start=100.0)  # non-zero epoch: offsets must hide it
    tracer = Tracer(clock=clock)
    with tracer.span("root", queries=1):
        clock.advance(1.0)
        with tracer.span("child"):
            clock.advance(0.5)
        clock.advance(0.25)
    return tracer.last_trace()


class TestTraceExport:
    def test_times_are_offsets_from_root(self, trace):
        doc = span_to_dict(trace)
        assert doc["start_s"] == 0.0  # the 100 s epoch never appears
        assert doc["end_s"] == pytest.approx(1.75)
        (child,) = doc["children"]
        assert child["start_s"] == pytest.approx(1.0)
        assert child["duration_s"] == pytest.approx(0.5)

    def test_attrs_survive(self, trace):
        assert span_to_dict(trace)["attrs"] == {"queries": 1}

    def test_envelope_schema_and_total(self, trace):
        doc = trace_to_dict(trace)
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["total_seconds"] == pytest.approx(1.75)

    def test_dump_trace_round_trips_through_json(self, trace, tmp_path):
        path = dump_trace(trace, tmp_path / "TRACE_q.json")
        doc = json.loads(path.read_text())
        assert doc["root"]["name"] == "root"
        assert doc["root"]["children"][0]["name"] == "child"


class TestBenchExport:
    def test_write_then_read(self, tmp_path):
        path = write_bench_json(
            tmp_path / "BENCH_x.json", "throughput", {"phases": {}}
        )
        doc = read_bench_json(path)
        assert doc == {
            "schema": BENCH_SCHEMA,
            "bench": "throughput",
            "data": {"phases": {}},
        }

    def test_read_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope/v0", "data": {}}))
        with pytest.raises(ValueError):
            read_bench_json(path)

    def test_metrics_snapshot_envelope(self):
        reg = MetricsRegistry(clock=ManualClock())
        reg.counter("c").inc()
        doc = metrics_to_dict(reg)
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["bench"] == "metrics_snapshot"
        assert doc["data"]["counters"] == {"c": 1}
