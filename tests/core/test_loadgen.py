"""Tests for the throughput load generator."""

import numpy as np
import pytest

from repro.core.loadgen import PhaseThroughput, measure_throughput


class TestPhaseThroughput:
    def test_queries_per_second(self):
        p = PhaseThroughput(phase="x", queries=10, wall_seconds=2.0)
        assert p.queries_per_second == pytest.approx(5.0)

    def test_zero_time_guard(self):
        p = PhaseThroughput(phase="x", queries=1, wall_seconds=0.0)
        assert p.queries_per_second > 0


class TestMeasureThroughput:
    def test_reports_all_phases(self, engine):
        report = measure_throughput(
            engine, num_queries=4, rng=np.random.default_rng(0)
        )
        assert [p for p, _ in report.rows()] == ["token", "ranking", "url"]
        for _, qps in report.rows():
            assert qps > 0

    def test_query_counts_respected(self, engine):
        report = measure_throughput(
            engine, num_queries=4, rng=np.random.default_rng(1)
        )
        assert report.ranking.queries == 4
        assert report.url.queries == 4
        assert report.token.queries >= 1
