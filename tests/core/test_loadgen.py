"""Tests for the throughput load generator."""

import json

import numpy as np
import pytest

from repro.core.loadgen import (
    PhaseThroughput,
    measure_throughput,
    write_bench_files,
)
from repro.obs import BENCH_SCHEMA, ManualClock, MetricsRegistry


class TestPhaseThroughput:
    def test_queries_per_second(self):
        p = PhaseThroughput(phase="x", queries=10, wall_seconds=2.0)
        assert p.queries_per_second == pytest.approx(5.0)

    def test_zero_time_guard(self):
        p = PhaseThroughput(phase="x", queries=1, wall_seconds=0.0)
        assert p.queries_per_second > 0

    def test_latencies_default_to_absent(self):
        p = PhaseThroughput(phase="x", queries=2, wall_seconds=1.0)
        assert p.latencies == ()
        assert p.p50 is None and p.p95 is None and p.p99 is None

    def test_exact_latency_quantiles(self):
        p = PhaseThroughput(
            phase="x",
            queries=4,
            wall_seconds=1.0,
            latencies=(0.1, 0.2, 0.3, 0.4),
        )
        assert p.p50 == pytest.approx(0.25)
        assert p.latency_quantile(1.0) == pytest.approx(0.4)


class TestMeasureThroughput:
    def test_reports_all_phases(self, engine):
        report = measure_throughput(
            engine, num_queries=4, rng=np.random.default_rng(0)
        )
        assert [p for p, _ in report.rows()] == ["token", "ranking", "url"]
        for _, qps in report.rows():
            assert qps > 0

    def test_query_counts_respected(self, engine):
        report = measure_throughput(
            engine, num_queries=4, rng=np.random.default_rng(1)
        )
        assert report.ranking.queries == 4
        assert report.url.queries == 4
        assert report.token.queries >= 1

    def test_injected_clock_makes_latencies_deterministic(self, engine):
        """Each query is timed individually through the injected clock."""
        clock = ManualClock()
        report = measure_throughput(
            engine, num_queries=3, rng=np.random.default_rng(2), clock=clock
        )
        for phase in report.phases():
            assert len(phase.latencies) == phase.queries
            # The manual clock never advanced: all latencies exactly 0.
            assert phase.latencies == (0.0,) * phase.queries
            assert phase.wall_seconds == 0.0

    def test_registry_collects_per_phase_histograms(self, engine):
        registry = MetricsRegistry(clock=ManualClock())
        report = measure_throughput(
            engine,
            num_queries=3,
            rng=np.random.default_rng(3),
            registry=registry,
        )
        for phase in ("token", "ranking", "url"):
            hist = registry.histogram(f"loadgen.{phase}.seconds")
            assert hist.count == getattr(report, phase).queries


class TestBenchFiles:
    def test_write_bench_files_schema_and_content(self, engine, tmp_path):
        report = measure_throughput(
            engine, num_queries=3, rng=np.random.default_rng(4)
        )
        tp_path, lat_path = write_bench_files(report, tmp_path)
        assert tp_path.name == "BENCH_throughput.json"
        assert lat_path.name == "BENCH_latency.json"
        tp = json.loads(tp_path.read_text())
        lat = json.loads(lat_path.read_text())
        assert tp["schema"] == lat["schema"] == BENCH_SCHEMA
        assert tp["bench"] == "throughput" and lat["bench"] == "latency"
        ranking = tp["data"]["phases"]["ranking"]
        assert ranking["queries"] == 3
        assert ranking["queries_per_second"] == pytest.approx(
            report.ranking.queries_per_second
        )
        lat_ranking = lat["data"]["phases"]["ranking"]
        assert lat_ranking["count"] == 3
        assert lat_ranking["p50_s"] == pytest.approx(report.ranking.p50)


class TestViaRpc:
    def test_rpc_mode_reports_all_phases(self, engine):
        report = measure_throughput(
            engine, num_queries=3, rng=np.random.default_rng(4), via_rpc=True
        )
        assert [p for p, _ in report.rows()] == ["token", "ranking", "url"]
        assert report.ranking.queries == 3
        assert report.url.queries == 3

    def test_remote_engine_requires_rpc_mode(self, engine):
        from repro import TiptoeEngine
        from repro.net.transport import LoopbackTransport

        transport = LoopbackTransport(
            {name: svc.endpoint for name, svc in engine.services.items()}
        )
        remote = TiptoeEngine(engine.index, transport=transport)
        with pytest.raises(ValueError, match="via_rpc"):
            measure_throughput(remote, num_queries=2)
        report = measure_throughput(
            remote, num_queries=2, rng=np.random.default_rng(5), via_rpc=True
        )
        assert report.url.queries == 2


class TestConcurrentRanking:
    """The closed-loop multi-client mode that exercises the batcher."""

    def test_reports_all_queries(self, engine):
        from repro.core.loadgen import measure_concurrent_ranking

        report = measure_concurrent_ranking(
            engine,
            num_clients=4,
            queries_per_client=2,
            rng=np.random.default_rng(0),
        )
        assert report.clients == 4
        assert report.queries == 8
        assert report.failed_queries == 0
        assert report.batches >= 1
        assert report.queries_per_second > 0
        assert len(report.latencies) == 8

    def test_concurrency_fills_batches(self, engine):
        from repro.core.loadgen import measure_concurrent_ranking

        report = measure_concurrent_ranking(
            engine,
            num_clients=6,
            queries_per_client=2,
            max_batch_size=6,
            max_batch_wait_ms=25.0,
            rng=np.random.default_rng(1),
        )
        assert report.failed_queries == 0
        assert report.mean_batch_size > 1
        assert report.largest_batch > 1

    def test_uses_attached_scheduler(self, corpus):
        from repro import TiptoeConfig, TiptoeEngine
        from repro.core.loadgen import measure_concurrent_ranking

        cfg = TiptoeConfig(max_batch_size=4, max_batch_wait_ms=2.0)
        with TiptoeEngine.build(
            corpus.texts()[:100],
            corpus.urls()[:100],
            cfg,
            rng=np.random.default_rng(2),
        ) as engine:
            scheduler = engine.ranking_service.scheduler
            report = measure_concurrent_ranking(
                engine,
                num_clients=4,
                queries_per_client=2,
                rng=np.random.default_rng(3),
            )
            # Ran through the engine's own scheduler, not a private one.
            assert scheduler.stats.queries >= report.queries
            assert scheduler.running
        assert report.failed_queries == 0

    def test_registry_collects_latencies(self, engine):
        from repro.core.loadgen import measure_concurrent_ranking
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        report = measure_concurrent_ranking(
            engine,
            num_clients=2,
            queries_per_client=2,
            rng=np.random.default_rng(4),
            registry=registry,
        )
        hist = registry.histogram("loadgen.concurrent_ranking.seconds")
        assert hist.count == report.queries

    def test_data_block_is_bench_ready(self, engine):
        from repro.core.loadgen import measure_concurrent_ranking

        report = measure_concurrent_ranking(
            engine,
            num_clients=2,
            queries_per_client=2,
            rng=np.random.default_rng(5),
        )
        data = report.data()
        for key in (
            "clients",
            "queries",
            "queries_per_second",
            "batches",
            "mean_batch_size",
            "p50_s",
        ):
            assert key in data

    def test_input_validation(self, engine):
        from repro.core.loadgen import measure_concurrent_ranking

        with pytest.raises(ValueError):
            measure_concurrent_ranking(engine, num_clients=0)
        with pytest.raises(ValueError):
            measure_concurrent_ranking(engine, queries_per_client=0)
