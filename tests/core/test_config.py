"""Tests for the deployment configuration."""

import pytest

from repro.core.config import TiptoeConfig


class TestConfig:
    def test_effective_dim_with_and_without_pca(self):
        assert TiptoeConfig(embedding_dim=24, pca_dim=12).effective_dim == 12
        assert TiptoeConfig(embedding_dim=24, pca_dim=None).effective_dim == 24

    def test_ranking_plaintext_modulus_matches_appendix_c(self):
        # Paper: d = 192, 4-bit precision -> p = 2^17.
        cfg = TiptoeConfig(embedding_dim=192, pca_dim=None, precision_bits=4)
        assert cfg.ranking_plaintext_modulus() == 2**17

    def test_plaintext_modulus_is_power_of_two(self):
        cfg = TiptoeConfig(embedding_dim=24, pca_dim=12)
        p = cfg.ranking_plaintext_modulus()
        assert p & (p - 1) == 0
        assert p >= cfg.quantization().min_plaintext_modulus(12)

    def test_cluster_size_rule(self):
        cfg = TiptoeConfig()
        assert cfg.cluster_size_for(10_000) == 100  # sqrt rule
        assert TiptoeConfig(target_cluster_size=7).cluster_size_for(10_000) == 7

    def test_with_overrides(self):
        cfg = TiptoeConfig().with_(boundary_fraction=0.0)
        assert cfg.boundary_fraction == 0.0
        assert cfg.embedding_dim == TiptoeConfig().embedding_dim

    def test_validation(self):
        with pytest.raises(ValueError):
            TiptoeConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            TiptoeConfig(embedding_dim=8, pca_dim=9)
        with pytest.raises(ValueError):
            TiptoeConfig(num_workers=0)
        with pytest.raises(ValueError):
            TiptoeConfig(url_batch_size=0)
