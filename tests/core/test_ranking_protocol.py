"""Tests for the private ranking protocol and the sharded runtime."""

import numpy as np
import pytest

from repro.core.cluster_runtime import ShardedRankingService, WorkerFailure
from repro.core.ranking import (
    RankingClient,
    RankingService,
    build_query_vector,
)
from repro.embeddings.quantize import quantize


class TestQueryVector:
    def test_structure_matches_figure_10(self):
        q = np.array([1, -2, 3])
        q_tilde = build_query_vector(q, cluster_index=1, num_clusters=3)
        assert q_tilde.tolist() == [0, 0, 0, 1, -2, 3, 0, 0, 0]

    def test_bad_cluster_rejected(self):
        with pytest.raises(IndexError):
            build_query_vector(np.ones(2), 3, 3)
        with pytest.raises(IndexError):
            build_query_vector(np.ones(2), -1, 3)


@pytest.fixture(scope="module")
def ranking_setup(engine):
    index = engine.index
    client = RankingClient(
        index.ranking_scheme,
        dim=index.layout.dim,
        num_clusters=index.layout.num_clusters,
    )
    service = RankingService(index.ranking_scheme, index.layout.matrix)
    return index, client, service


def fresh_keyed_token(engine, seed):
    token = engine.mint_token(np.random.default_rng(seed))
    return token.consume()


class TestRankingCorrectness:
    def test_scores_match_plaintext_inner_products(
        self, engine, ranking_setup
    ):
        index, client, service = ranking_setup
        keys, hints = fresh_keyed_token(engine, 0)
        rng = np.random.default_rng(1)
        q_emb = quantize(index.embeddings[3] * index.quantization_gain, index.config.quantization())
        cluster = 2
        query = client.build_query(keys["ranking"], q_emb, cluster, rng)
        answer = service.answer(query)
        scores = client.decode_scores(keys["ranking"], answer, hints["ranking"])
        dim = index.layout.dim
        block = index.layout.matrix[:, cluster * dim : (cluster + 1) * dim]
        assert np.array_equal(scores, block @ q_emb)

    def test_own_document_wins_its_cluster(self, engine, ranking_setup):
        index, client, service = ranking_setup
        keys, hints = fresh_keyed_token(engine, 2)
        doc = 10
        cluster = index.clusters.doc_to_clusters[doc][0]
        row = index.layout.cluster_doc_ids[cluster].index(doc)
        q_emb = quantize(index.embeddings[doc] * index.quantization_gain, index.config.quantization())
        query = client.build_query(
            keys["ranking"], q_emb, cluster, np.random.default_rng(3)
        )
        scores = client.decode_scores(
            keys["ranking"], service.answer(query), hints["ranking"]
        )
        real = int(index.layout.cluster_sizes[cluster])
        assert int(np.argmax(scores[:real])) == row

    def test_ledger_counts_two_ops_per_entry(self, engine, ranking_setup):
        index, _, service = ranking_setup
        expected_per_query = 2 * index.layout.matrix.size
        queries_so_far = service.ledger.total_ops("ranking") / expected_per_query
        assert queries_so_far == int(queries_so_far)


class TestShardedService:
    def test_sharded_matches_single_node(self, engine, ranking_setup):
        index, client, single = ranking_setup
        keys, hints = fresh_keyed_token(engine, 4)
        q_emb = quantize(index.embeddings[7] * index.quantization_gain, index.config.quantization())
        query = client.build_query(
            keys["ranking"], q_emb, 1, np.random.default_rng(5)
        )
        sharded = ShardedRankingService.build(
            index.ranking_scheme,
            index.layout.matrix,
            dim=index.layout.dim,
            num_workers=5,
        )
        a1 = single.answer(query)
        a2 = sharded.answer(query)
        assert np.array_equal(a1.values, a2.values)

    def test_shards_partition_all_columns(self, engine):
        index = engine.index
        sharded = ShardedRankingService.build(
            index.ranking_scheme,
            index.layout.matrix,
            dim=index.layout.dim,
            num_workers=3,
        )
        widths = [w.matrix_slice.shape[1] for w in sharded.workers]
        assert sum(widths) == index.layout.matrix.shape[1]
        for w in sharded.workers:
            assert w.matrix_slice.shape[1] % index.layout.dim == 0

    def test_worker_failure_blocks_query(self, engine, ranking_setup):
        index, client, _ = ranking_setup
        keys, hints = fresh_keyed_token(engine, 6)
        q_emb = quantize(index.embeddings[0] * index.quantization_gain, index.config.quantization())
        query = client.build_query(
            keys["ranking"], q_emb, 0, np.random.default_rng(7)
        )
        sharded = ShardedRankingService.build(
            index.ranking_scheme,
            index.layout.matrix,
            dim=index.layout.dim,
            num_workers=4,
        )
        sharded.fail_worker(2)
        with pytest.raises(WorkerFailure):
            sharded.answer(query)
        sharded.revive_worker(2)
        assert sharded.answer(query).values is not None

    def test_workers_capped_by_cluster_count(self, engine):
        index = engine.index
        sharded = ShardedRankingService.build(
            index.ranking_scheme,
            index.layout.matrix,
            dim=index.layout.dim,
            num_workers=10_000,
        )
        assert sharded.num_workers == index.layout.num_clusters

    def test_shard_storage_accounting(self, engine):
        sharded = engine.ranking_service
        assert sharded.max_shard_bytes() > 0


class TestClientValidation:
    def test_dimension_mismatch_rejected(self, engine):
        with pytest.raises(ValueError):
            RankingClient(engine.index.ranking_scheme, dim=3, num_clusters=2)
