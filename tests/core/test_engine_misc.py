"""Engine-level robustness and edge-case tests."""

import numpy as np
import pytest

from repro import TiptoeConfig, TiptoeEngine
from repro.net import wire
from repro.net.rpc import frame


class TestEngineConstruction:
    def test_build_from_embeddings_requires_matching_dim(self):
        class FakeEmbedder:
            def embed(self, text):
                return np.zeros(4)

        with pytest.raises(ValueError):
            TiptoeEngine.build_from_embeddings(
                np.zeros((3, 5)),
                ["u1", "u2", "u3"],
                query_embedder=FakeEmbedder(),
                config=TiptoeConfig(embedding_dim=4, pca_dim=None),
            )

    def test_embed_query_applies_pca(self, engine):
        vec = engine.embed_query("some words here")
        assert vec.shape == (engine.index.config.effective_dim,)

    def test_embed_query_prefers_embed_text_interface(self, corpus):
        class JointLike:
            def embed_text(self, text):
                return np.ones(6) / np.sqrt(6)

            def embed(self, text):  # pragma: no cover - must not be used
                raise AssertionError("embed_text should take precedence")

        engine = TiptoeEngine.build_from_embeddings(
            np.eye(6).repeat(4, axis=0),
            [f"u{i}" for i in range(24)],
            query_embedder=JointLike(),
            config=TiptoeConfig(embedding_dim=6, pca_dim=None),
            rng=np.random.default_rng(0),
        )
        assert engine.embed_query("x").shape == (6,)

    def test_storage_position_identity_without_scatter(self, engine):
        assert engine.storage_position(17) == 17

    def test_storage_position_with_scatter_map(self, corpus):
        engine = TiptoeEngine.build(
            corpus.texts()[:60],
            corpus.urls()[:60],
            TiptoeConfig(group_urls_by_content=False),
            rng=np.random.default_rng(1),
        )
        perm = engine.index.url_position_map
        assert perm is not None
        assert engine.storage_position(5) == int(perm[5])
        # The scattered deployment still answers correctly end to end.
        result = engine.search(corpus.documents[2].text, np.random.default_rng(2))
        assert result.results[0].url is not None


class TestEndpointRobustness:
    def test_unknown_method_rejected(self, engine):
        with pytest.raises(KeyError):
            engine.ranking_endpoint.dispatch(frame("bogus", b""))

    def test_wrong_modulus_ciphertext_rejected(self, engine):
        # A URL-scheme (q = 2^32) ciphertext sent to the ranking
        # endpoint (q = 2^64) must be refused, not misparsed.
        rng = np.random.default_rng(3)
        keys = engine.index.url_scheme.gen_keys(rng)
        sel = engine.index.url_db.selection_vector(0)
        ct = engine.index.url_scheme.encrypt(keys, sel, rng)
        with pytest.raises(ValueError):
            engine.ranking_endpoint.dispatch(
                frame("answer", wire.encode_ciphertext(ct))
            )

    def test_hint_endpoint_serves_real_hints(self, engine):
        body = engine.hint_endpoint.dispatch(frame("ranking", b""))
        from repro.net.rpc import unframe

        _, payload = unframe(body)
        hint, q_bits = wire.decode_matrix(payload)
        assert q_bits == 64
        assert np.array_equal(hint, engine.index.ranking_prep.hint)


class TestWireRobustness:
    def test_truncated_matrix_blob(self):
        blob = wire.encode_matrix(np.zeros((2, 3), dtype=np.uint64), 64)
        with pytest.raises(ValueError):
            wire.decode_matrix(blob[: len(blob) // 2])

    def test_matrix_round_trip_32(self):
        m = np.arange(12, dtype=np.uint32).reshape(3, 4)
        back, q_bits = wire.decode_matrix(wire.encode_matrix(m, 32))
        assert q_bits == 32
        assert np.array_equal(back, m)
