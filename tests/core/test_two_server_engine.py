"""End-to-end tests for the two-server deployment (SS9)."""

import numpy as np
import pytest

from repro.core.two_server_engine import TwoServerEngine


@pytest.fixture(scope="module")
def two_engine(engine):
    # Reuse the single-server index: same corpus, same clustering.
    return TwoServerEngine.from_index(engine.index)


class TestTwoServerEngine:
    def test_own_text_query_finds_document(self, two_engine, corpus):
        hits = 0
        for doc in (3, 40, 120):
            result = two_engine.search(
                corpus.documents[doc].text, np.random.default_rng(doc)
            )
            top = [
                two_engine.doc_id_of_position(p)
                for p, _ in result.doc_scores[:5]
            ]
            hits += int(doc in top)
        assert hits >= 2

    def test_matches_single_server_ranking(self, two_engine, engine, corpus):
        """Both deployments rank identically over the same index."""
        text = corpus.documents[8].text
        single = engine.search(text, np.random.default_rng(0))
        double = two_engine.search(text, np.random.default_rng(1))
        assert single.cluster == double.cluster
        single_docs = engine.result_doc_ids(single)[:10]
        double_docs = [
            two_engine.doc_id_of_position(p) for p, _ in double.doc_scores[:10]
        ]
        assert single_docs == double_docs

    def test_urls_retrievable(self, two_engine, corpus):
        result = two_engine.search(
            corpus.documents[15].text, np.random.default_rng(2)
        )
        urls = result.top_urls(5)
        assert urls
        assert all(u in set(corpus.urls()) for u in urls)

    def test_traffic_far_below_single_server(self, two_engine, engine, corpus):
        text = corpus.documents[20].text
        single = engine.search(text, np.random.default_rng(3))
        double = two_engine.search(text, np.random.default_rng(4))
        assert double.traffic.total_bytes() < single.traffic.total_bytes() / 10

    def test_no_token_phase(self, two_engine, corpus):
        result = two_engine.search(
            corpus.documents[1].text, np.random.default_rng(5)
        )
        assert result.traffic.phases() == ["ranking", "url"]

    def test_message_sizes_query_independent(self, two_engine):
        summaries = []
        for i, q in enumerate(["short", "a much longer query string " * 4]):
            result = two_engine.search(q, np.random.default_rng(10 + i))
            summaries.append(result.traffic.phase_summary())
        assert summaries[0] == summaries[1]

    def test_latency_model(self, two_engine, corpus):
        result = two_engine.search(
            corpus.documents[4].text, np.random.default_rng(6)
        )
        # Four round trips (two servers x two phases) at 50 ms RTT...
        # the simulated latency model counts per-phase exchanges.
        assert result.perceived_latency >= 0.1
