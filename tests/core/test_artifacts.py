"""The artifact plane: versioned save/load of a built index, and the
bit-identity of searches served from a cold start."""

import json
import shutil

import numpy as np
import pytest

from repro import TiptoeEngine
from repro.core.artifacts import (
    PRECOMPUTE_SCHEMA,
    SCHEMA,
    ArtifactError,
    load_index,
    load_precompute_sidecar,
    save_index,
    write_precompute_sidecar,
)
from repro.core.indexer import TiptoeIndex


@pytest.fixture(scope="module")
def saved(engine, tmp_path_factory):
    path = tmp_path_factory.mktemp("artifacts")
    engine.index.save(path)
    return path


class TestRoundTrip:
    def test_search_is_bit_identical_after_reload(self, engine, saved):
        reloaded = TiptoeEngine(TiptoeIndex.load(saved))
        for text in ("alpha beta", "gamma", "delta epsilon zeta"):
            a = engine.search(text, rng=np.random.default_rng(42))
            b = reloaded.search(text, rng=np.random.default_rng(42))
            assert b.cluster == a.cluster
            assert [(r.position, r.score, r.url) for r in b.results] == [
                (r.position, r.score, r.url) for r in a.results
            ]
        reloaded.close()

    def test_traffic_shape_survives_reload(self, engine, saved):
        reloaded = TiptoeEngine(TiptoeIndex.load(saved))
        a = engine.search("theta iota", rng=np.random.default_rng(1))
        b = reloaded.search("theta iota", rng=np.random.default_rng(1))
        assert b.traffic.total_bytes() == a.traffic.total_bytes()
        reloaded.close()

    def test_core_arrays_match_exactly(self, engine, saved):
        index = engine.index
        reloaded = load_index(saved)
        np.testing.assert_array_equal(
            reloaded.layout.matrix, index.layout.matrix
        )
        np.testing.assert_array_equal(
            reloaded.url_db.matrix, index.url_db.matrix
        )
        np.testing.assert_array_equal(
            reloaded.ranking_prep.hint, index.ranking_prep.hint
        )
        np.testing.assert_array_equal(
            reloaded.url_prep.hint, index.url_prep.hint
        )
        np.testing.assert_array_equal(
            reloaded.clusters.centroids, index.clusters.centroids
        )
        assert reloaded.config == index.config
        assert reloaded.quantization_gain == index.quantization_gain

    def test_schemes_regenerate_the_same_public_matrix(self, engine, saved):
        reloaded = load_index(saved)
        np.testing.assert_array_equal(
            reloaded.ranking_scheme.inner.a,
            engine.index.ranking_scheme.inner.a,
        )
        assert (
            reloaded.url_scheme.inner.a_seed
            == engine.index.url_scheme.inner.a_seed
        )

    def test_vocabulary_and_batches_survive(self, engine, saved):
        index, reloaded = engine.index, load_index(saved)
        assert (
            reloaded.embedder.vocab.term_to_id
            == index.embedder.vocab.term_to_id
        )
        assert len(reloaded.url_batches) == len(index.url_batches)
        assert reloaded.url_batches[0].payload == index.url_batches[0].payload
        assert (
            reloaded.url_batches[-1].doc_ids == index.url_batches[-1].doc_ids
        )


class TestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ArtifactError, match="manifest"):
            load_index(tmp_path)

    def test_schema_mismatch(self, saved, tmp_path):
        for name in ("manifest.json", "vocab.json", "arrays.npz", "blobs.bin"):
            (tmp_path / name).write_bytes((saved / name).read_bytes())
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["schema"] = "repro.index/v999"
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="v999") as info:
            load_index(tmp_path)
        assert SCHEMA in str(info.value)  # tells the reader what *would* load

    def test_truncated_blobs(self, saved, tmp_path):
        for name in ("manifest.json", "vocab.json", "arrays.npz"):
            (tmp_path / name).write_bytes((saved / name).read_bytes())
        blobs = (saved / "blobs.bin").read_bytes()
        (tmp_path / "blobs.bin").write_bytes(blobs[: len(blobs) - 7])
        with pytest.raises(ArtifactError, match="remain"):
            load_index(tmp_path)

    def test_non_lsa_embedder_is_rejected_clearly(self, engine, tmp_path):
        import dataclasses

        class Exotic:
            def embed(self, text):  # pragma: no cover - never called
                raise NotImplementedError

        weird = dataclasses.replace(engine.index, embedder=Exotic())
        with pytest.raises(ArtifactError, match="LsaEmbedder"):
            save_index(weird, tmp_path)

    def test_save_returns_the_directory_and_is_rerunnable(
        self, engine, tmp_path
    ):
        out = save_index(engine.index, tmp_path / "idx")
        assert (out / "manifest.json").exists()
        again = save_index(engine.index, tmp_path / "idx")  # overwrite ok
        assert again == out


@pytest.fixture(scope="module")
def saved_warm(engine, tmp_path_factory):
    """The same index saved with the precompute sidecar."""
    path = tmp_path_factory.mktemp("artifacts_warm")
    save_index(engine.index, path, precompute=True)
    return path


class TestPrecomputeSidecar:
    def test_sidecar_is_written_and_validates(self, saved_warm):
        assert (saved_warm / "precompute.npz").is_file()
        meta, arrays = load_precompute_sidecar(saved_warm)
        assert meta["schema"] == PRECOMPUTE_SCHEMA
        assert set(meta["plans"]) == {"ranking", "url"}
        assert set(arrays) == {"ranking_hint_ntt", "url_hint_ntt"}

    def test_plain_save_has_no_sidecar(self, saved):
        assert not (saved / "precompute.npz").exists()
        assert load_precompute_sidecar(saved) is None
        assert load_index(saved).precompute is None

    def test_tables_load_memory_mapped_read_only(self, saved_warm):
        _, arrays = load_precompute_sidecar(saved_warm)
        for table in arrays.values():
            assert isinstance(table, np.memmap)
            assert not table.flags.writeable

    def test_sidecar_tables_match_lazy_recompute(self, engine, saved_warm):
        """Bit-identity of the persisted NTT tables with what the lazy
        path computes on demand."""
        index = engine.index
        _, arrays = load_precompute_sidecar(saved_warm)
        np.testing.assert_array_equal(
            arrays["ranking_hint_ntt"],
            index.ranking_scheme.hint_ntt_table(index.ranking_prep),
        )
        np.testing.assert_array_equal(
            arrays["url_hint_ntt"],
            index.url_scheme.hint_ntt_table(index.url_prep),
        )

    def test_load_attaches_tables_and_plans(self, saved_warm):
        index = load_index(saved_warm)
        assert index.precompute is not None
        assert index.ranking_prep.hint_ntt is not None
        assert index.url_prep.hint_ntt is not None
        for plan in index.precompute["plans"].values():
            assert plan["entry_bound"] >= 0
            assert plan["limb_bits"] >= 1

    def test_cold_start_equivalence(self, engine, saved, saved_warm):
        """A warm serve answers bit-identically to a cache-less one."""
        cold = TiptoeEngine(TiptoeIndex.load(saved))
        warm = TiptoeEngine(TiptoeIndex.load(saved_warm))
        for text in ("alpha beta", "gamma", "delta epsilon zeta"):
            a = cold.search(text, rng=np.random.default_rng(17))
            b = warm.search(text, rng=np.random.default_rng(17))
            assert b.cluster == a.cluster
            assert [(r.position, r.score, r.url) for r in b.results] == [
                (r.position, r.score, r.url) for r in a.results
            ]
        cold.close()
        warm.close()

    def test_token_mint_equivalence(self, engine, saved_warm):
        """Minting against the persisted tables is bit-identical."""
        warm = TiptoeEngine(TiptoeIndex.load(saved_warm))
        a = engine.mint_token(np.random.default_rng(23))
        b = warm.mint_token(np.random.default_rng(23))
        for name in ("ranking", "url"):
            np.testing.assert_array_equal(
                a.hint_products[name], b.hint_products[name]
            )
        warm.close()

    def test_digest_mismatch_is_rejected(self, saved_warm, tmp_path):
        """A sidecar keyed to a different arrays.npz must not load."""
        for item in saved_warm.iterdir():
            shutil.copy(item, tmp_path / item.name)
        # Re-serialize the same arrays compressed: identical content,
        # different bytes, so the recorded digest no longer matches.
        with np.load(tmp_path / "arrays.npz") as z:
            arrays = {name: z[name] for name in z.files}
            with (tmp_path / "arrays.npz").open("wb") as fh:
                np.savez_compressed(fh, **arrays)
        with pytest.raises(ArtifactError, match="different"):
            load_precompute_sidecar(tmp_path)
        with pytest.raises(ArtifactError, match="rebuild the sidecar"):
            load_index(tmp_path)

    def test_unknown_sidecar_schema_is_rejected(self, saved_warm, tmp_path):
        for item in saved_warm.iterdir():
            shutil.copy(item, tmp_path / item.name)
        with np.load(tmp_path / "precompute.npz") as z:
            arrays = {name: z[name] for name in z.files}
        meta = json.loads(bytes(arrays["meta_json"]).decode("utf-8"))
        meta["schema"] = "repro.precompute/v999"
        arrays["meta_json"] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        with (tmp_path / "precompute.npz").open("wb") as fh:
            np.savez(fh, **arrays)
        with pytest.raises(ArtifactError, match="v999"):
            load_precompute_sidecar(tmp_path)

    def test_sidecar_requires_saved_arrays(self, engine, tmp_path):
        with pytest.raises(ArtifactError, match="save the index"):
            write_precompute_sidecar(engine.index, tmp_path)

    def test_index_save_honors_config_default(self, engine, tmp_path):
        """TiptoeConfig.precompute_sidecar drives index.save()."""
        import dataclasses

        config = dataclasses.replace(
            engine.index.config, precompute_sidecar=True
        )
        index = dataclasses.replace(engine.index, config=config)
        index.save(tmp_path / "auto")
        assert (tmp_path / "auto" / "precompute.npz").is_file()


class TestKernelPlanSidecar:
    """The autotuned KernelPlan record rides the precompute sidecar:
    tuned at build time, applied at serve time without re-tuning."""

    RECORD = {
        "ranking": {
            "backend": "reference",
            "limb_bits": 0,
            "chunk_rows": 0,
            "workers": 0,
        },
        "url": {
            "backend": "multiprocess",
            "limb_bits": 0,
            "chunk_rows": 0,
            "workers": 2,
        },
    }

    def test_explicit_record_round_trips(self, engine, tmp_path):
        save_index(engine.index, tmp_path)
        write_precompute_sidecar(engine.index, tmp_path,
                                 kernel_plan=self.RECORD)
        meta, _ = load_precompute_sidecar(tmp_path)
        assert meta["kernel_plan"] == self.RECORD
        assert load_index(tmp_path).precompute["kernel_plan"] == self.RECORD

    def test_plain_sidecar_has_no_kernel_plan(self, saved_warm):
        meta, _ = load_precompute_sidecar(saved_warm)
        assert "kernel_plan" not in meta

    def test_autotune_config_tunes_at_save_time(self, engine, tmp_path):
        import dataclasses

        from repro.lwe.backends import backend_names

        config = dataclasses.replace(
            engine.index.config,
            precompute_sidecar=True,
            kernel_autotune=True,
        )
        index = dataclasses.replace(engine.index, config=config)
        index.save(tmp_path)
        meta, _ = load_precompute_sidecar(tmp_path)
        record = meta["kernel_plan"]
        assert set(record) == {"ranking", "url"}
        for entry in record.values():
            assert entry["backend"] in backend_names()
            assert entry["throughput"] > 0

    def test_serve_cold_starts_on_the_tuned_plan(self, engine, tmp_path):
        """build_services applies the sidecar record directly -- no
        tuner run at load time -- and searches stay bit-identical."""
        from repro.core.services import build_services

        save_index(engine.index, tmp_path)
        write_precompute_sidecar(engine.index, tmp_path,
                                 kernel_plan=self.RECORD)
        index = load_index(tmp_path)
        services = build_services(index)
        try:
            assert services["ranking"].kernel_backend == "reference"
            assert services["url"].kernel_backend == "multiprocess"
            health = services["url"].health()
            assert health["kernel_backend"] == "multiprocess"
        finally:
            for service in services.values():
                service.close()

    def test_cnative_record_round_trips_and_serves(self, engine, tmp_path):
        """A sidecar tuned to the native backend: the record survives
        the save/load cycle verbatim, build_services applies it, and --
        on a compiler-less host -- the unavailable backend degrades to
        reference at plan-build time without changing answers."""
        from repro.core.services import build_services

        record = {
            "ranking": {
                "backend": "cnative",
                "limb_bits": 0,
                "chunk_rows": 0,
                "workers": 2,
            },
            "url": {
                "backend": "cnative",
                "limb_bits": 0,
                "chunk_rows": 0,
                "workers": 2,
            },
        }
        save_index(engine.index, tmp_path)
        write_precompute_sidecar(engine.index, tmp_path, kernel_plan=record)
        meta, _ = load_precompute_sidecar(tmp_path)
        assert meta["kernel_plan"] == record
        index = load_index(tmp_path)
        services = build_services(index)
        try:
            assert services["ranking"].kernel_backend == "cnative"
            assert services["url"].kernel_backend == "cnative"
            health = services["ranking"].health()
            assert health["kernel_backend"] == "cnative"
            # Plans build lazily; effective backend unknown until then.
            assert health["kernel_effective"] is None
        finally:
            for service in services.values():
                service.close()
