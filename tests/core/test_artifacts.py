"""The artifact plane: versioned save/load of a built index, and the
bit-identity of searches served from a cold start."""

import json

import numpy as np
import pytest

from repro import TiptoeEngine
from repro.core.artifacts import (
    SCHEMA,
    ArtifactError,
    load_index,
    save_index,
)
from repro.core.indexer import TiptoeIndex


@pytest.fixture(scope="module")
def saved(engine, tmp_path_factory):
    path = tmp_path_factory.mktemp("artifacts")
    engine.index.save(path)
    return path


class TestRoundTrip:
    def test_search_is_bit_identical_after_reload(self, engine, saved):
        reloaded = TiptoeEngine(TiptoeIndex.load(saved))
        for text in ("alpha beta", "gamma", "delta epsilon zeta"):
            a = engine.search(text, rng=np.random.default_rng(42))
            b = reloaded.search(text, rng=np.random.default_rng(42))
            assert b.cluster == a.cluster
            assert [(r.position, r.score, r.url) for r in b.results] == [
                (r.position, r.score, r.url) for r in a.results
            ]
        reloaded.close()

    def test_traffic_shape_survives_reload(self, engine, saved):
        reloaded = TiptoeEngine(TiptoeIndex.load(saved))
        a = engine.search("theta iota", rng=np.random.default_rng(1))
        b = reloaded.search("theta iota", rng=np.random.default_rng(1))
        assert b.traffic.total_bytes() == a.traffic.total_bytes()
        reloaded.close()

    def test_core_arrays_match_exactly(self, engine, saved):
        index = engine.index
        reloaded = load_index(saved)
        np.testing.assert_array_equal(
            reloaded.layout.matrix, index.layout.matrix
        )
        np.testing.assert_array_equal(
            reloaded.url_db.matrix, index.url_db.matrix
        )
        np.testing.assert_array_equal(
            reloaded.ranking_prep.hint, index.ranking_prep.hint
        )
        np.testing.assert_array_equal(
            reloaded.url_prep.hint, index.url_prep.hint
        )
        np.testing.assert_array_equal(
            reloaded.clusters.centroids, index.clusters.centroids
        )
        assert reloaded.config == index.config
        assert reloaded.quantization_gain == index.quantization_gain

    def test_schemes_regenerate_the_same_public_matrix(self, engine, saved):
        reloaded = load_index(saved)
        np.testing.assert_array_equal(
            reloaded.ranking_scheme.inner.a,
            engine.index.ranking_scheme.inner.a,
        )
        assert (
            reloaded.url_scheme.inner.a_seed
            == engine.index.url_scheme.inner.a_seed
        )

    def test_vocabulary_and_batches_survive(self, engine, saved):
        index, reloaded = engine.index, load_index(saved)
        assert (
            reloaded.embedder.vocab.term_to_id
            == index.embedder.vocab.term_to_id
        )
        assert len(reloaded.url_batches) == len(index.url_batches)
        assert reloaded.url_batches[0].payload == index.url_batches[0].payload
        assert (
            reloaded.url_batches[-1].doc_ids == index.url_batches[-1].doc_ids
        )


class TestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ArtifactError, match="manifest"):
            load_index(tmp_path)

    def test_schema_mismatch(self, saved, tmp_path):
        for name in ("manifest.json", "vocab.json", "arrays.npz", "blobs.bin"):
            (tmp_path / name).write_bytes((saved / name).read_bytes())
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["schema"] = "repro.index/v999"
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="v999") as info:
            load_index(tmp_path)
        assert SCHEMA in str(info.value)  # tells the reader what *would* load

    def test_truncated_blobs(self, saved, tmp_path):
        for name in ("manifest.json", "vocab.json", "arrays.npz"):
            (tmp_path / name).write_bytes((saved / name).read_bytes())
        blobs = (saved / "blobs.bin").read_bytes()
        (tmp_path / "blobs.bin").write_bytes(blobs[: len(blobs) - 7])
        with pytest.raises(ArtifactError, match="remain"):
            load_index(tmp_path)

    def test_non_lsa_embedder_is_rejected_clearly(self, engine, tmp_path):
        import dataclasses

        class Exotic:
            def embed(self, text):  # pragma: no cover - never called
                raise NotImplementedError

        weird = dataclasses.replace(engine.index, embedder=Exotic())
        with pytest.raises(ArtifactError, match="LsaEmbedder"):
            save_index(weird, tmp_path)

    def test_save_returns_the_directory_and_is_rerunnable(
        self, engine, tmp_path
    ):
        out = save_index(engine.index, tmp_path / "idx")
        assert (out / "manifest.json").exists()
        again = save_index(engine.index, tmp_path / "idx")  # overwrite ok
        assert again == out
