"""The ahead-of-time plane: pre-mint pools, the client prefetcher, and
batched minting -- token work stays off the latency-critical path while
every answer stays bit-identical to the lazy path."""

import dataclasses
import threading
import time

import numpy as np
import pytest

from repro import TiptoeEngine
from repro.core.precompute import TokenPool
from repro.lwe.sampling import seeded_rng
from repro.obs import runtime as obs


def wait_until(predicate, timeout=10.0, interval=0.005):
    """Poll ``predicate`` until true or ``timeout`` seconds elapse."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def result_tuples(result):
    return [(r.position, r.score, r.url) for r in result.results]


class FakeMint:
    """A mint_fn double: hands out unique integers, counts batches."""

    def __init__(self, delay=0.0, fail=False):
        self.counter = 0
        self.batches = []
        self.delay = delay
        self.fail = fail
        self._lock = threading.Lock()

    def __call__(self, count):
        if self.fail:
            raise RuntimeError("mint backend down")
        if self.delay:
            time.sleep(self.delay)
        with self._lock:
            start = self.counter
            self.counter += count
            self.batches.append(count)
        return list(range(start, start + count))


class TestTokenPool:
    def test_refills_to_depth_on_start(self):
        mint = FakeMint()
        with TokenPool(mint, depth=5, batch=2) as pool:
            assert wait_until(lambda: pool.size() == 5)
            # Refill batches never overshoot the target depth.
            assert all(b <= 2 for b in mint.batches)
            assert mint.counter == 5

    def test_take_wakes_the_worker(self):
        with TokenPool(FakeMint(), depth=3, batch=3) as pool:
            assert wait_until(lambda: pool.size() == 3)
            token = pool.take_nowait()
            assert token is not None
            assert wait_until(lambda: pool.size() == 3)  # topped back up

    def test_take_nowait_on_empty_returns_none(self):
        pool = TokenPool(FakeMint(), depth=2)
        assert pool.take_nowait() is None  # not started: nothing pooled

    def test_take_blocks_until_refill(self):
        mint = FakeMint(delay=0.05)
        with TokenPool(mint, depth=2, batch=1) as pool:
            token = pool.take(timeout=5.0)
            assert token is not None

    def test_tokens_come_out_in_mint_order_and_unique(self):
        taken = []
        with TokenPool(FakeMint(), depth=4, batch=4) as pool:
            for _ in range(12):
                token = pool.take(timeout=5.0)
                assert token is not None
                taken.append(token)
        assert taken == sorted(taken)
        assert len(set(taken)) == len(taken)

    def test_concurrent_takers_never_share_a_token(self):
        taken = []
        taken_lock = threading.Lock()

        def taker(pool, n):
            for _ in range(n):
                token = pool.take(timeout=5.0)
                if token is not None:
                    with taken_lock:
                        taken.append(token)

        with TokenPool(FakeMint(), depth=8, batch=4) as pool:
            threads = [
                threading.Thread(target=taker, args=(pool, 10))
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(taken) == 40
        assert len(set(taken)) == 40  # single-use: no token seen twice

    def test_close_drains_the_pool(self):
        pool = TokenPool(FakeMint(), depth=4)
        pool.start()
        assert wait_until(lambda: pool.size() == 4)
        pool.close()
        assert pool.size() == 0  # secret-key material discarded
        assert not pool.running
        pool.close()  # idempotent

    def test_failed_mint_stops_the_worker(self):
        pool = TokenPool(FakeMint(fail=True), depth=2)
        pool.start()
        assert wait_until(lambda: pool.health()["status"] == "failed")
        assert pool.take(timeout=1.0) is None  # callers fall back inline
        pool.close()

    def test_health_reports_depths(self):
        with TokenPool(FakeMint(), depth=3, batch=2) as pool:
            assert wait_until(lambda: pool.size() == 3)
            health = pool.health()
            assert health["status"] == "ok"
            assert health["depth"] == 3
            assert health["target_depth"] == 3
            assert health["refill_batch"] == 2
        assert pool.health()["status"] == "stopped"

    def test_depth_validation(self):
        with pytest.raises(ValueError, match="depth"):
            TokenPool(FakeMint(), depth=0)
        with pytest.raises(ValueError, match="batch"):
            TokenPool(FakeMint(), depth=1, batch=0)


@pytest.fixture(scope="module")
def pooled_engine(engine):
    """The same index served with a pre-mint pool of depth 3."""
    config = dataclasses.replace(
        engine.index.config, token_pool_depth=3, token_pool_batch=2
    )
    pooled = TiptoeEngine(dataclasses.replace(engine.index, config=config))
    yield pooled
    pooled.close()


class TestEnginePool:
    def test_pool_attaches_to_the_mint_service(self, pooled_engine):
        assert pooled_engine.token_pool is not None
        health = pooled_engine.services["token"].health()
        assert health["pool"]["target_depth"] == 3

    def test_pool_reaches_target_depth(self, pooled_engine):
        pool = pooled_engine.token_pool
        assert wait_until(lambda: pool.size() == 3, timeout=30.0)

    def test_unpinned_mint_uses_the_pool(self, pooled_engine):
        pool = pooled_engine.token_pool
        assert wait_until(lambda: pool.size() >= 1, timeout=30.0)
        pooled = pool._tokens[0]
        token = pooled_engine.mint_token()
        assert token is pooled  # O(1) handoff, no inline crypto

    def test_pinned_rng_bypasses_the_pool(self, pooled_engine, engine):
        """An explicit rng pins the caller's key stream: the pooled and
        lazy engines mint bit-identical tokens from the same seed."""
        a = pooled_engine.mint_token(seeded_rng(21))
        b = engine.mint_token(seeded_rng(21))
        for name in ("ranking", "url"):
            np.testing.assert_array_equal(
                a.hint_products[name], b.hint_products[name]
            )
        assert a.upload_bytes == b.upload_bytes
        assert a.download_bytes == b.download_bytes

    def test_search_is_bit_identical_to_lazy_engine(
        self, pooled_engine, engine
    ):
        for text in ("alpha beta", "gamma delta"):
            a = pooled_engine.search(text, rng=np.random.default_rng(3))
            b = engine.search(text, rng=np.random.default_rng(3))
            assert a.cluster == b.cluster
            assert result_tuples(a) == result_tuples(b)


class TestMintMany:
    def test_mint_tokens_matches_sequential_mints(self, engine):
        """Batched acquisition draws keys in sequential order, so token
        i is bit-identical to the i-th lazy mint from the same seed."""
        batched = engine.mint_tokens(3, seeded_rng(9))
        rng = seeded_rng(9)
        sequential = [engine.mint_token(rng) for _ in range(3)]
        for a, b in zip(batched, sequential):
            for name in ("ranking", "url"):
                np.testing.assert_array_equal(
                    a.hint_products[name], b.hint_products[name]
                )
            # Per-token byte accounting matches the single-mint wire
            # encodings, pooled or not.
            assert a.upload_bytes == b.upload_bytes
            assert a.download_bytes == b.download_bytes

    def test_count_validation(self, engine):
        with pytest.raises(ValueError, match="at least one"):
            engine.mint_tokens(0)

    def test_each_batched_token_searches_once(self, engine):
        tokens = engine.mint_tokens(2, seeded_rng(13))
        for token in tokens:
            token.consume()
        from repro.homenc import TokenReuseError

        with pytest.raises(TokenReuseError):
            tokens[0].consume()


@pytest.fixture()
def prefetch_engine(engine):
    """The same index with a client-side prefetch depth of 2."""
    config = dataclasses.replace(engine.index.config, token_prefetch_depth=2)
    eng = TiptoeEngine(dataclasses.replace(engine.index, config=config))
    yield eng
    eng.close()


class TestClientPrefetcher:
    def test_stockpile_reaches_target_depth(self, prefetch_engine):
        with prefetch_engine.new_client(seeded_rng(1)) as client:
            assert wait_until(
                lambda: client.tokens_available() == 2, timeout=30.0
            )

    def test_stockpile_refills_after_search(self, prefetch_engine):
        with prefetch_engine.new_client(seeded_rng(2)) as client:
            assert wait_until(
                lambda: client.tokens_available() == 2, timeout=30.0
            )
            client.search("alpha beta")
            assert wait_until(
                lambda: client.tokens_available() == 2, timeout=30.0
            )

    def test_steady_state_search_has_no_inline_mint_span(
        self, prefetch_engine
    ):
        """The acceptance bar: with the prefetcher at depth >= 1, the
        client.search trace never contains token-mint work."""
        with prefetch_engine.new_client(seeded_rng(3)) as client:
            assert wait_until(
                lambda: client.tokens_available() == 2, timeout=30.0
            )
            tracer, _ = obs.enable()
            try:
                client.search("gamma delta")
                trace = tracer.last_trace()
            finally:
                obs.disable()
        assert trace.name == "client.search"
        assert trace.find("token.mint") == []
        assert trace.find("token.acquire") == []
        # The take itself is still visible (and cheap).
        assert len(trace.find("token")) == 1

    def test_empty_stockpile_falls_back_inline(self, engine):
        """Prefetch off: the lazy path still mints inside the trace."""
        client = engine.new_client(seeded_rng(4))
        tracer, _ = obs.enable()
        try:
            client.search("gamma delta")
            trace = tracer.last_trace()
        finally:
            obs.disable()
        assert len(trace.find("token.acquire")) == 1
        assert len(trace.find("token.mint")) == 1

    def test_prefetched_search_is_bit_identical_to_lazy(
        self, prefetch_engine, engine
    ):
        """Answers do not depend on which rng minted the token: LHE
        decryption exactly removes the key material."""
        with prefetch_engine.new_client(seeded_rng(5)) as client:
            assert wait_until(
                lambda: client.tokens_available() == 2, timeout=30.0
            )
            for text in ("alpha beta", "epsilon zeta"):
                a = client.search(text)
                b = engine.search(text, rng=seeded_rng(5))
                assert a.cluster == b.cluster
                assert result_tuples(a) == result_tuples(b)

    def test_searches_race_the_prefetcher_safely(self, prefetch_engine):
        """Back-to-back searches pop while the prefetcher extends; the
        deque stays consistent and every token is single-use."""
        with prefetch_engine.new_client(seeded_rng(6)) as client:
            results = [client.search("alpha") for _ in range(6)]
        first = result_tuples(results[0])
        assert all(result_tuples(r) == first for r in results[1:])

    def test_take_token_is_thread_safe(self, prefetch_engine):
        """Concurrent takers never receive the same stockpiled token."""
        with prefetch_engine.new_client(seeded_rng(7)) as client:
            assert wait_until(
                lambda: client.tokens_available() == 2, timeout=30.0
            )
            taken = []
            taken_lock = threading.Lock()

            def take():
                token = client._take_token()
                with taken_lock:
                    taken.append(token)

            threads = [threading.Thread(target=take) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(taken) == 4
        assert len({id(t) for t in taken}) == 4

    def test_close_discards_stockpile_and_stops_thread(
        self, prefetch_engine
    ):
        client = prefetch_engine.new_client(seeded_rng(8))
        assert wait_until(
            lambda: client.tokens_available() == 2, timeout=30.0
        )
        client.close()
        assert client.tokens_available() == 0
        assert client._prefetch_thread is None
        client.close()  # idempotent
        # The client still works after close -- it just mints lazily.
        result = client.search("alpha beta")
        assert result.results
