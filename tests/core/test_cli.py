"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_args(self):
        args = build_parser().parse_args(["plan", "1000000", "--dim", "128"])
        assert args.docs == 1_000_000 and args.dim == 128

    def test_params_q_bits_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["params", "--q-bits", "48"])


class TestCommands:
    def test_plan_runs(self, capsys):
        assert main(["plan", "364000000"]) == 0
        out = capsys.readouterr().out
        assert "core_seconds" in out and "total_mib" in out

    def test_params_runs(self, capsys):
        assert main(["params", "--q-bits", "64"]) == 0
        out = capsys.readouterr().out
        assert "p (paper)" in out

    def test_demo_runs(self, capsys):
        assert main(["demo", "--docs", "120", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "traffic:" in out and "score=" in out

    def test_quality_runs(self, capsys):
        assert main(["quality", "--docs", "150", "--queries", "10"]) == 0
        out = capsys.readouterr().out
        assert "MRR@100" in out

    def test_obs_report_runs_and_disables_obs(self, capsys, tmp_path):
        import json

        from repro.obs import TRACE_SCHEMA, runtime as obs

        trace_path = tmp_path / "TRACE_q.json"
        assert main([
            "obs-report", "--docs", "120", "--queries", "1",
            "--trace-out", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "client.search" in out
        assert "kernel.lwe.matmul" in out
        assert "CostLedger" in out and "TrafficLog" in out
        doc = json.loads(trace_path.read_text())
        assert doc["schema"] == TRACE_SCHEMA
        assert not obs.enabled()  # command cleans up the global switch

    def test_obs_report_json_mode(self, capsys):
        import json

        assert main(["obs-report", "--docs", "120", "--queries", "1",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["bench"] == "metrics_snapshot"
        assert doc["data"]["counters"]["client.searches"] == 1
