"""The fleet plane, in-process: topology specs, generation-tagged
addressing, ranking fan-out bit-identity, failover, admission control,
and the rolling-swap protocol -- all over scripted transports (the
subprocess integration lives in test_fleet_e2e.py)."""

import json
import threading

import numpy as np
import pytest

from repro.core.cluster_runtime import ShardedRankingService
from repro.core.config import TiptoeConfig
from repro.core.engine import TiptoeEngine
from repro.core.fleet import (
    FleetConfig,
    FleetError,
    FleetOverloaded,
    FleetRouter,
    GenerationSpec,
    NoLiveReplica,
    ReplicaSpec,
    ShardSpec,
    UnknownGeneration,
)
from repro.core.indexer import TiptoeIndex
from repro.core.ranking import RankingClient
from repro.core.services import build_services
from repro.corpus import SyntheticCorpus, SyntheticCorpusConfig
from repro.embeddings.quantize import quantize
from repro.lwe import modular
from repro.net import rpc, wire
from repro.net.rpc import ServiceEndpoint
from repro.net.transport import (
    LoopbackTransport,
    RemoteCallError,
    TaggedTransport,
    TransportConnectionLost,
    split_service,
    tag_service,
)

NUM_SHARDS = 3
REPLICAS = 2


@pytest.fixture(scope="module")
def index():
    corpus = SyntheticCorpus.generate(
        SyntheticCorpusConfig(num_docs=100, seed=0)
    )
    return TiptoeIndex.build(
        corpus.texts(),
        corpus.urls(),
        TiptoeConfig(),
        rng=np.random.default_rng(0),
    )


class FakeWorkerFleet:
    """In-process worker fleet: one loopback service roster per
    (shard, replica), addressed by a fake port, with a kill switch."""

    def __init__(self, index, num_shards=NUM_SHARDS, replicas=REPLICAS):
        self.killed = set()
        self.request_log = []
        self.workers = {}
        self.rosters = []
        for shard in range(num_shards):
            for replica in range(replicas):
                services = build_services(
                    index, shard=shard, num_shards=num_shards
                )
                for service in services.values():
                    service.open()
                self.rosters.append(services)
                endpoints = {
                    name: service.endpoint
                    for name, service in services.items()
                }
                meta = ServiceEndpoint("_meta")
                meta.register(
                    "health",
                    lambda p, svcs=services: json.dumps(
                        {n: s.health() for n, s in svcs.items()}
                    ).encode(),
                )
                endpoints["_meta"] = meta
                self.workers[self.port(shard, replica)] = LoopbackTransport(
                    endpoints
                )
        self.spec = GenerationSpec(
            generation="deadbeef",
            shards=tuple(
                ShardSpec(
                    shard=shard,
                    replicas=tuple(
                        ReplicaSpec("fake", self.port(shard, r))
                        for r in range(replicas)
                    ),
                )
                for shard in range(num_shards)
            ),
        )

    @staticmethod
    def port(shard, replica):
        return 1000 + shard * 10 + replica

    def transport_factory(self, spec):
        fleet = self

        class FakeTransport:
            def request(self, service, request, *, timeout=None):
                if spec.port in fleet.killed:
                    raise TransportConnectionLost("replica killed")
                fleet.request_log.append((spec.port, service))
                try:
                    return fleet.workers[spec.port].request(
                        service, request
                    )
                except Exception as exc:
                    # Over real sockets a handler error comes back as a
                    # STATUS_ERROR frame, i.e. RemoteCallError.
                    raise RemoteCallError(str(exc)) from exc

            def close(self):
                pass

        return FakeTransport()

    def close(self):
        for services in self.rosters:
            for service in services.values():
                service.close()


@pytest.fixture()
def fleet(index):
    fake = FakeWorkerFleet(index)
    router = FleetRouter(
        FleetConfig(health_interval_s=0.05),
        transport_factory=fake.transport_factory,
    )
    router.open()
    router.add_generation(fake.spec, make_current=True)
    yield fake, router
    router.close()
    fake.close()


class RouterTransport:
    """Client transport that hands requests straight to route()."""

    def __init__(self, router):
        self.router = router

    def request(self, service, request, *, timeout=None):
        return self.router.route(service, request)

    def close(self):
        pass


def build_ranking_query(index, seed):
    rng = np.random.default_rng(seed)
    client = RankingClient(
        index.ranking_scheme,
        dim=index.layout.dim,
        num_clusters=index.layout.num_clusters,
    )
    keys = index.ranking_scheme.gen_keys(rng)
    return client.build_query(
        keys,
        quantize(
            index.embeddings[seed % index.num_docs]
            * index.quantization_gain,
            index.config.quantization(),
        ),
        seed % index.layout.num_clusters,
        rng,
    )


def ranking_blob(index, seed):
    return wire.encode_ciphertext(build_ranking_query(index, seed).ciphertext)


class TestGenerationAddressing:
    def test_tag_and_split_round_trip(self):
        assert tag_service("ranking", "1f2e3d4c") == "ranking@1f2e3d4c"
        assert split_service("ranking@1f2e3d4c") == ("ranking", "1f2e3d4c")
        assert split_service("ranking") == ("ranking", None)

    def test_tagged_ranking_name_fits_the_frame_field(self):
        from repro.net.tcp import MAX_SERVICE_BYTES

        assert (
            len(tag_service("ranking", "ab12cd34").encode())
            == MAX_SERVICE_BYTES
        )

    def test_double_tagging_rejected(self):
        with pytest.raises(ValueError, match="already"):
            tag_service("ranking@aa", "bb")

    def test_empty_tag_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            tag_service("ranking", "")

    def test_tagged_transport_rewrites_every_request(self):
        seen = []

        class Recorder:
            def request(self, service, request, *, timeout=None):
                seen.append(service)
                return b"ok"

            def close(self):
                pass

        transport = TaggedTransport(Recorder(), "cafe0123")
        transport.request("ranking", b"r")
        transport.request("url", b"r")
        assert seen == ["ranking@cafe0123", "url@cafe0123"]


class TestSpecs:
    def test_generation_spec_json_round_trip(self):
        spec = GenerationSpec(
            generation="aa11bb22",
            shards=(
                ShardSpec(0, (ReplicaSpec("h", 1), ReplicaSpec("h", 2))),
                ShardSpec(1, (ReplicaSpec("h", 3),)),
            ),
            artifact="/tmp/idx",
        )
        assert GenerationSpec.from_json(spec.to_json()) == spec

    def test_shard_order_validated(self):
        with pytest.raises(ValueError, match="in order"):
            GenerationSpec(
                generation="aa",
                shards=(ShardSpec(1, (ReplicaSpec("h", 1),)),),
            )

    def test_empty_replicas_rejected(self):
        with pytest.raises(ValueError, match="no replicas"):
            ShardSpec(0, ())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(max_inflight=0)
        with pytest.raises(ValueError):
            FleetConfig(replica_failure_budget=0)


class TestShardPartition:
    def test_build_shard_validates_range(self, index):
        with pytest.raises(ValueError, match="outside"):
            ShardedRankingService.build_shard(
                index.ranking_scheme,
                index.layout.matrix,
                index.layout.dim,
                shard=3,
                num_shards=3,
            )

    def test_shard_health_reports_topology(self, index):
        shard = ShardedRankingService.build_shard(
            index.ranking_scheme,
            index.layout.matrix,
            index.layout.dim,
            shard=1,
            num_shards=3,
        )
        health = shard.health()
        assert health["shard"] == 1 and health["num_shards"] == 3
        shard.close()

    def test_partial_sums_reproduce_the_full_answer(self, index):
        full = ShardedRankingService.build(
            index.ranking_scheme,
            index.layout.matrix,
            index.layout.dim,
            num_workers=2,
        )
        shards = [
            ShardedRankingService.build_shard(
                index.ranking_scheme,
                index.layout.matrix,
                index.layout.dim,
                shard=s,
                num_shards=NUM_SHARDS,
            )
            for s in range(NUM_SHARDS)
        ]
        q_bits = index.ranking_scheme.params.inner.q_bits
        query = build_ranking_query(index, 3)
        expected = full.answer(query).values
        total = None
        for shard in shards:
            partial = shard.answer(query).values
            total = (
                partial
                if total is None
                else modular.add(total, partial, q_bits)
            )
        assert np.array_equal(expected, total)
        full.close()
        for shard in shards:
            shard.close()


class TestRouting:
    def test_fleet_search_is_bit_identical_to_single_process(
        self, index, fleet
    ):
        fake, router = fleet
        corpus_text = "synthetic query about documents"
        via_fleet = TiptoeEngine(index, transport=RouterTransport(router))
        baseline = TiptoeEngine(index)
        try:
            a = via_fleet.search(corpus_text, np.random.default_rng(7))
            b = baseline.search(corpus_text, np.random.default_rng(7))
            assert [(r.position, r.score) for r in a.results] == [
                (r.position, r.score) for r in b.results
            ]
        finally:
            via_fleet.close()
            baseline.close()

    def test_ranking_fans_out_to_every_shard(self, index, fleet):
        fake, router = fleet
        blob = ranking_blob(index, 5)
        router.route("ranking", rpc.frame("answer", blob))
        shards_hit = {
            (port - 1000) // 10
            for port, service in fake.request_log
            if service == "ranking"
        }
        assert shards_hit == set(range(NUM_SHARDS))

    def test_non_ranking_goes_to_exactly_one_replica(self, fleet):
        fake, router = fleet
        router.route("hint", rpc.frame("ranking", b""))
        assert len(fake.request_log) == 1

    def test_unknown_generation_rejected(self, fleet):
        fake, router = fleet
        with pytest.raises(UnknownGeneration):
            router.route("ranking@ffffffff", rpc.frame("answer", b""))

    def test_tagged_request_routes_to_its_generation(self, index, fleet):
        fake, router = fleet
        blob = ranking_blob(index, 6)
        tagged = router.route(
            "ranking@deadbeef", rpc.frame("answer", blob)
        )
        untagged = router.route("ranking", rpc.frame("answer", blob))
        assert tagged == untagged

    def test_worker_handler_error_propagates_not_retried(self, fleet):
        fake, router = fleet
        before = len(fake.request_log)
        with pytest.raises(RemoteCallError):
            router.route("hint", rpc.frame("nope", b""))
        # Exactly one replica saw it: a deterministic handler error
        # must not burn the failover budget.
        assert len(fake.request_log) == before + 1
        assert router.stats.failovers == 0


class TestFailover:
    def test_killed_replica_fails_over_and_counts(self, index, fleet):
        fake, router = fleet
        fake.killed.add(fake.port(1, 0))
        blob = ranking_blob(index, 8)
        response = router.route("ranking", rpc.frame("answer", blob))
        assert rpc.unframe(response)[0] == "answer"
        assert router.stats.failovers >= 1

    def test_failed_over_answer_stays_bit_identical(self, index, fleet):
        fake, router = fleet
        blob = ranking_blob(index, 9)
        healthy = router.route("ranking", rpc.frame("answer", blob))
        fake.killed.add(fake.port(0, 0))
        fake.killed.add(fake.port(2, 1))
        degraded = router.route("ranking", rpc.frame("answer", blob))
        assert healthy == degraded

    def test_no_live_replica_raises(self, index, fleet):
        fake, router = fleet
        fake.killed.add(fake.port(1, 0))
        fake.killed.add(fake.port(1, 1))
        blob = ranking_blob(index, 10)
        with pytest.raises(NoLiveReplica):
            router.route("ranking", rpc.frame("answer", blob))

    def test_prober_revives_a_recovered_replica(self, fleet):
        fake, router = fleet
        port = fake.port(0, 0)
        fake.killed.add(port)
        # Burn the failure budget so the replica is marked down.
        for _ in range(2):
            try:
                router.route("hint", rpc.frame("ranking", b""))
            except NoLiveReplica:  # pragma: no cover - depends on rotation
                pass
        gen = router._generation_or_raise("deadbeef")
        client = next(
            c for c in gen.all_clients() if c.spec.port == port
        )
        client.mark_failure()
        assert not client.live
        fake.killed.discard(port)
        deadline = threading.Event()
        for _ in range(100):
            if client.live:
                break
            deadline.wait(0.05)
        assert client.live


class TestAdmission:
    def test_overload_sheds_with_counter(self, index):
        fake = FakeWorkerFleet(index, num_shards=1, replicas=1)
        release = threading.Event()
        entered = threading.Event()
        inner_factory = fake.transport_factory

        def slow_factory(spec):
            inner = inner_factory(spec)

            class Slow:
                def request(self, service, request, *, timeout=None):
                    if service == "hint":
                        entered.set()
                        release.wait(10.0)
                    return inner.request(
                        service, request, timeout=timeout
                    )

                def close(self):
                    inner.close()

            return Slow()

        router = FleetRouter(
            FleetConfig(max_inflight=1),
            transport_factory=slow_factory,
        )
        router.add_generation(fake.spec, make_current=True)
        try:
            holder = threading.Thread(
                target=lambda: router.route(
                    "hint", rpc.frame("ranking", b"")
                )
            )
            holder.start()
            assert entered.wait(10.0)
            with pytest.raises(FleetOverloaded):
                router.route("url", rpc.frame("answer", b""))
            assert router.stats.shed == 1
            release.set()
            holder.join(10.0)
        finally:
            release.set()
            router.close()
            fake.close()


class TestSwapProtocol:
    def test_cut_over_and_retire(self, index):
        fake_a = FakeWorkerFleet(index, num_shards=1, replicas=1)
        fake_b = FakeWorkerFleet(index, num_shards=1, replicas=1)
        spec_b = GenerationSpec(
            generation="beefcafe", shards=fake_b.spec.shards
        )
        router = FleetRouter(
            FleetConfig(health_interval_s=0.05),
            transport_factory=lambda spec: (
                fake_a.transport_factory(spec)
            ),
        )
        try:
            router.add_generation(fake_a.spec, make_current=True)
            assert router.health()["current"] == "deadbeef"
            router.add_generation(spec_b)
            router.warm_generation("beefcafe")
            # Retiring the current generation is refused.
            with pytest.raises(FleetError, match="current"):
                router.retire_generation("deadbeef")
            router.cut_over("beefcafe")
            assert router.health()["current"] == "beefcafe"
            assert router.stats.swaps == 1
            router.retire_generation("deadbeef")
            with pytest.raises(UnknownGeneration):
                router.route("hint@deadbeef", rpc.frame("ranking", b""))
            # The new generation keeps serving.
            router.route("hint", rpc.frame("ranking", b""))
        finally:
            router.close()
            fake_a.close()
            fake_b.close()

    def test_cut_over_to_unknown_generation_rejected(self, fleet):
        fake, router = fleet
        with pytest.raises(UnknownGeneration):
            router.cut_over("ffffffff")

    def test_duplicate_generation_rejected(self, fleet):
        fake, router = fleet
        with pytest.raises(FleetError, match="already"):
            router.add_generation(fake.spec)

    def test_swap_endpoint_over_the_wire_methods(self, fleet):
        fake, router = fleet
        endpoint = router.endpoint
        body = endpoint.dispatch(rpc.frame("health", b""))
        _, payload = rpc.unframe(body)
        report = json.loads(payload)
        assert report["current"] == "deadbeef"
        body = endpoint.dispatch(rpc.frame("generations", b""))
        _, payload = rpc.unframe(body)
        assert json.loads(payload)["current"] == "deadbeef"


class TestHealth:
    def test_health_reports_per_shard_replicas(self, fleet):
        fake, router = fleet
        health = router.health()
        shards = health["generations"]["deadbeef"]
        assert len(shards) == NUM_SHARDS
        assert all(s["live"] == REPLICAS for s in shards)
        assert health["status"] == "ok"

    def test_empty_router_reports_empty(self):
        router = FleetRouter()
        assert router.health()["status"] == "empty"
        router.close()
