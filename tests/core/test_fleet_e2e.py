"""Fleet integration: real shard worker subprocesses behind a real TCP
front door.  Covers the three ISSUE-level behaviors -- replica failover
under load with zero failed queries, rolling index swap with per-
generation bit-identity, and admission-control shedding -- plus the
``serve-fleet`` CLI hand-off.  Pure in-process fleet logic lives in
test_fleet.py."""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.core.cluster_runtime import ShardedRankingService
from repro.core.fleet import (
    FleetConfig,
    FleetLauncher,
    FleetOverloaded,
    FleetRouter,
)
from repro.core.indexer import TiptoeIndex
from repro.core.ranking import RankingClient
from repro.embeddings.quantize import quantize
from repro.net import wire
from repro.net.rpc import RpcChannel
from repro.net.tcp import ServerRunner, connect_transport
from repro.net.transport import TrafficLog

REPO = Path(__file__).resolve().parents[2]
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}

NUM_QUERIES = 200
KILL_AT = 80


def run_cli(*argv, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=ENV,
        timeout=timeout,
        check=True,
    )


@pytest.fixture(scope="module")
def artifact_a(tmp_path_factory):
    out = tmp_path_factory.mktemp("fleet") / "index_a"
    run_cli(
        "build-index", str(out), "--docs", "120", "--seed", "0",
        "--precompute",
    )
    return out


@pytest.fixture(scope="module")
def artifact_b(tmp_path_factory):
    out = tmp_path_factory.mktemp("fleet") / "index_b"
    run_cli(
        "build-index", str(out), "--docs", "120", "--seed", "1",
        "--precompute",
    )
    return out


def build_queries(index, count, seed=11):
    """Pre-built ranking queries: the cheap loadgen unit (no token
    minting, no URL fetch) that still exercises the full crypto path."""
    rng = np.random.default_rng(seed)
    client = RankingClient(
        index.ranking_scheme,
        dim=index.layout.dim,
        num_clusters=index.layout.num_clusters,
    )
    keys = index.ranking_scheme.gen_keys(rng)
    return [
        client.build_query(
            keys,
            quantize(
                index.embeddings[i % index.num_docs]
                * index.quantization_gain,
                index.config.quantization(),
            ),
            i % index.layout.num_clusters,
            rng,
        )
        for i in range(count)
    ]


def baseline_answers(index, queries):
    """Single-process ground truth the fleet must match bit-for-bit."""
    service = ShardedRankingService.build(
        index.ranking_scheme,
        index.layout.matrix,
        index.layout.dim,
        num_workers=2,
    )
    try:
        return [service.answer(q).values for q in queries]
    finally:
        service.close()


class FrontDoor:
    """FleetRouter behind a real ServerRunner, like ``serve-fleet``."""

    def __init__(self, config=None):
        self.router = FleetRouter(config or FleetConfig())
        self.runner = ServerRunner([self.router], fallback=self.router.route)

    def __enter__(self):
        self.runner.start()
        self.host, self.port = self.runner.address
        return self

    def __exit__(self, *exc):
        self.runner.close()

    def channel(self, *, timeout=10.0):
        transport = connect_transport(self.host, self.port, timeout=timeout)
        return RpcChannel(TrafficLog(), transport)


class TestFailoverUnderLoad:
    def test_replica_kill_mid_loadgen_drops_zero_queries(
        self, artifact_a, tmp_path
    ):
        index = TiptoeIndex.load(artifact_a)
        queries = build_queries(index, NUM_QUERIES)
        expected = baseline_answers(index, queries)
        blobs = [wire.encode_ciphertext(q.ciphertext) for q in queries]

        with FleetLauncher(
            artifact_a, num_shards=3, replicas_per_shard=2
        ) as launcher:
            spec = launcher.start()
            with FrontDoor(FleetConfig(health_interval_s=0.1)) as front:
                front.router.add_generation(spec, make_current=True)
                front.router.warm_generation(spec.generation)
                channel = front.channel()
                failures = 0
                for i, blob in enumerate(blobs):
                    if i == KILL_AT:
                        launcher.kill_replica(1, 0)
                    try:
                        body = channel.call(
                            "ranking", "ranking", "answer", blob
                        )
                    except Exception:
                        failures += 1
                        continue
                    values, _ = wire.decode_answer(body)
                    assert np.array_equal(values, expected[i]), (
                        f"query {i} diverged from the single-process"
                        " baseline"
                    )
                assert failures == 0
                assert front.router.stats.failovers >= 1

                health = front.router.health()
                shard1 = health["generations"][spec.generation][1]
                assert shard1["live"] == 1

                # CI uploads this as the fleet-smoke artifact.
                out_dir = Path(
                    os.environ.get("FLEET_ARTIFACT_DIR", tmp_path)
                )
                out_dir.mkdir(parents=True, exist_ok=True)
                (out_dir / "fleet_health.json").write_text(
                    json.dumps(health, indent=2)
                )
                channel.transport.close()


class TestRollingSwap:
    def test_swap_serves_both_generations_bit_identically(
        self, artifact_a, artifact_b
    ):
        index_a = TiptoeIndex.load(artifact_a)
        index_b = TiptoeIndex.load(artifact_b)
        queries_a = build_queries(index_a, 24, seed=21)
        queries_b = build_queries(index_b, 24, seed=22)
        expected_a = baseline_answers(index_a, queries_a)
        expected_b = baseline_answers(index_b, queries_b)
        blobs_a = [wire.encode_ciphertext(q.ciphertext) for q in queries_a]
        blobs_b = [wire.encode_ciphertext(q.ciphertext) for q in queries_b]

        with FleetLauncher(
            artifact_a, num_shards=2, replicas_per_shard=1
        ) as launcher_a, FleetLauncher(
            artifact_b, num_shards=2, replicas_per_shard=1
        ) as launcher_b:
            spec_a = launcher_a.start()
            assert spec_a.generation != ""
            with FrontDoor(FleetConfig(health_interval_s=0.1)) as front:
                router = front.router
                router.add_generation(spec_a, make_current=True)
                router.warm_generation(spec_a.generation)
                channel = front.channel()

                def check(tag, blob, want):
                    service = "ranking" if tag is None else f"ranking@{tag}"
                    body = channel.call(service, "ranking", "answer", blob)
                    values, _ = wire.decode_answer(body)
                    assert np.array_equal(values, want)

                # Phase 1: generation A is current.
                for blob, want in zip(blobs_a[:8], expected_a[:8]):
                    check(None, blob, want)

                # Phase 2: B spawns and warms while A keeps serving --
                # the rolling part of the swap.
                spec_b = launcher_b.start()
                assert spec_b.generation != spec_a.generation
                router.add_generation(spec_b)
                for blob, want in zip(blobs_a[8:16], expected_a[8:16]):
                    check(None, blob, want)
                router.warm_generation(spec_b.generation)

                # Phase 3: cut over.  Untagged traffic moves to B;
                # clients pinned to A (tagged) still get A's answers.
                router.cut_over(spec_b.generation)
                for i in range(8):
                    check(None, blobs_b[i], expected_b[i])
                    check(
                        spec_a.generation,
                        blobs_a[16 + i],
                        expected_a[16 + i],
                    )
                    check(
                        spec_b.generation, blobs_b[8 + i], expected_b[8 + i]
                    )

                # Phase 4: retire A; B remains the only generation.
                router.retire_generation(spec_a.generation)
                for blob, want in zip(blobs_b[16:], expected_b[16:]):
                    check(None, blob, want)
                assert router.stats.swaps == 1
                assert router.health()["current"] == spec_b.generation
                channel.transport.close()


class TestLoadShedding:
    def test_burst_beyond_max_inflight_sheds_with_counter(self, artifact_a):
        index = TiptoeIndex.load(artifact_a)
        queries = build_queries(index, 4, seed=31)
        blob = wire.encode_ciphertext(queries[0].ciphertext)

        with FleetLauncher(
            artifact_a, num_shards=1, replicas_per_shard=1
        ) as launcher:
            spec = launcher.start()
            with FrontDoor(FleetConfig(max_inflight=1)) as front:
                front.router.add_generation(spec, make_current=True)
                front.router.warm_generation(spec.generation)
                start = threading.Barrier(8)
                outcomes = []
                lock = threading.Lock()

                from repro.net import rpc

                request = rpc.frame("answer", blob)

                def worker():
                    start.wait()
                    try:
                        for _ in range(8):
                            front.router.route("ranking", request)
                        result = "ok"
                    except FleetOverloaded:
                        result = "shed"
                    except Exception as exc:  # pragma: no cover
                        result = f"error:{type(exc).__name__}"
                    with lock:
                        outcomes.append(result)

                threads = [
                    threading.Thread(target=worker) for _ in range(8)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(60.0)
                assert set(outcomes) <= {"ok", "shed"}
                assert "shed" in outcomes
                assert front.router.stats.shed >= 1


class TestServeFleetCli:
    def test_serve_fleet_hands_off_and_answers_queries(self, artifact_a):
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve-fleet",
                str(artifact_a), "--port", "0", "--shards", "2",
                "--replicas", "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=ENV,
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("fleet serving on "), (
                f"bad hand-off {line!r}: {proc.stderr.read()[:500]}"
            )
            rest = line.removeprefix("fleet serving on ")
            address, _, generation = rest.partition(" generation ")
            host, port = address.rsplit(":", 1)
            assert len(generation) == 8

            out = run_cli(
                "query", str(artifact_a), "alpha beta",
                "--host", host, "--port", port,
                "--generation", generation,
            ).stdout
            assert "score=" in out
        finally:
            proc.terminate()
            proc.wait(timeout=15)
