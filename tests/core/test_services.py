"""The service plane: the build_services roster, health reporting,
and the equivalence of the wire handlers with direct service calls."""

import numpy as np
import pytest

from repro import TiptoeEngine
from repro.core.services import build_services
from repro.net import wire
from repro.net.rpc import RpcChannel, frame, unframe
from repro.net.transport import LoopbackTransport, TrafficLog


class TestRoster:
    def test_all_four_services_present(self, engine):
        assert set(engine.services) == {"ranking", "url", "token", "hint"}

    def test_names_match_the_service_objects(self, engine):
        for name, service in engine.services.items():
            assert service.service_name == name
            assert service.endpoint.name == name

    def test_build_services_is_independent_of_the_engine(self, engine):
        services = build_services(engine.index)
        assert set(services) == {"ranking", "url", "token", "hint"}
        for service in services.values():
            service.close()


class TestHealth:
    def test_every_service_reports_ok(self, engine):
        for name, service in engine.services.items():
            report = service.health()
            assert report["service"] == name
            assert report["status"] == "ok"

    def test_ranking_health_counts_workers(self, engine):
        report = engine.services["ranking"].health()
        assert report["alive"] == report["workers"] > 0

    def test_url_health_reports_rows(self, engine):
        report = engine.services["url"].health()
        assert report["rows"] == engine.index.url_db.num_rows


class TestWireHandlersMatchDirectCalls:
    """The endpoint path (decode -> service -> encode) must produce
    byte-for-byte what a direct in-process call would."""

    def test_hint_endpoint_serves_the_exact_hint(self, engine):
        index = engine.index
        ep = engine.services["hint"].endpoint
        _, body = unframe(ep.dispatch(frame("ranking", b"")))
        served, _ = wire.decode_matrix(body)
        np.testing.assert_array_equal(served, index.ranking_prep.hint)
        _, body = unframe(ep.dispatch(frame("url", b"")))
        served, _ = wire.decode_matrix(body)
        np.testing.assert_array_equal(served, index.url_prep.hint)

    def test_channel_routes_to_the_same_bytes(self, engine):
        """RpcChannel over loopback returns exactly what the endpoint
        dispatches, and the traffic log sees both directions."""
        log = TrafficLog()
        channel = RpcChannel(log, engine.transport)
        body = channel.call("hint", "hint", "ranking", b"")
        ep = engine.services["hint"].endpoint
        _, direct = unframe(ep.dispatch(frame("ranking", b"")))
        assert body == direct
        assert log.bytes_up("hint") > 0
        assert log.bytes_down("hint") > 0

    def test_unknown_method_is_a_clear_error(self, engine):
        ep = engine.services["url"].endpoint
        with pytest.raises(KeyError):
            ep.dispatch(frame("nonsense", b""))


class TestEngineModes:
    def test_loopback_engine_owns_its_services(self, engine):
        assert isinstance(engine.transport, LoopbackTransport)
        assert engine.ranking_service is engine.services["ranking"]
        assert engine.url_service is engine.services["url"]

    def test_remote_engine_builds_no_services(self, engine):
        class Dead:
            def request(self, service, request, *, timeout=None):
                raise AssertionError("not called in this test")

            def close(self):
                pass

        remote = TiptoeEngine(engine.index, transport=Dead())
        assert remote.services == {}
        assert remote.ranking_service is None
        assert remote.url_service is None

    def test_endpoint_backcompat_properties(self, engine):
        assert engine.ranking_endpoint is engine.services["ranking"].endpoint
        assert engine.url_endpoint is engine.services["url"].endpoint
        assert engine.token_endpoint is engine.services["token"].endpoint
        assert engine.hint_endpoint is engine.services["hint"].endpoint
