"""End-to-end deployment smoke: build artifacts, cold-start ``serve``
in a subprocess, query it over TCP, and check the answers match an
in-process engine loaded from the same artifacts."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import TiptoeEngine
from repro.core.indexer import TiptoeIndex

REPO = Path(__file__).resolve().parents[2]
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}


def run_cli(*argv, timeout=180):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=ENV,
        timeout=timeout,
        check=True,
    )


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    out = tmp_path_factory.mktemp("deploy") / "index"
    run_cli("build-index", str(out), "--docs", "120", "--seed", "0")
    return out


@pytest.fixture(scope="module")
def serving(artifacts):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(artifacts), "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=ENV,
    )
    try:
        line = proc.stdout.readline().strip()
        if not line.startswith("serving on "):
            proc.terminate()
            raise RuntimeError(
                f"serve did not come up: {line!r} / {proc.stderr.read()[:500]}"
            )
        host, port = line.removeprefix("serving on ").rsplit(":", 1)
        yield host, int(port)
    finally:
        proc.terminate()
        proc.wait(timeout=10)


class TestDeploymentSmoke:
    def test_build_index_writes_the_artifact_set(self, artifacts):
        names = {p.name for p in artifacts.iterdir()}
        assert {
            "manifest.json",
            "vocab.json",
            "arrays.npz",
            "blobs.bin",
        } <= names

    def test_tcp_query_matches_in_process_engine(self, artifacts, serving):
        host, port = serving
        index = TiptoeIndex.load(artifacts)
        local = TiptoeEngine(index)
        remote = TiptoeEngine.connect(TiptoeIndex.load(artifacts), host, port)
        try:
            for text in ("alpha beta", "gamma delta"):
                a = local.search(text, rng=np.random.default_rng(17))
                b = remote.search(text, rng=np.random.default_rng(17))
                assert b.cluster == a.cluster
                assert [(r.position, r.score, r.url) for r in b.results] == [
                    (r.position, r.score, r.url) for r in a.results
                ]
        finally:
            remote.close()
            local.close()

    def test_query_command_prints_results_and_traffic(
        self, artifacts, serving
    ):
        host, port = serving
        out = run_cli(
            "query",
            str(artifacts),
            "alpha beta",
            "--host",
            host,
            "--port",
            str(port),
        ).stdout
        assert "score=" in out
        assert "B up" in out and "B down" in out
