"""Tests for the classic (hint-download) client mode."""

import numpy as np
import pytest

from repro.core.classic import ClassicTiptoeClient


@pytest.fixture(scope="module")
def classic(engine):
    client = ClassicTiptoeClient(engine, np.random.default_rng(0))
    client.fetch_hints()
    return client


class TestClassicMode:
    def test_results_match_token_mode(self, engine, classic, corpus):
        text = corpus.documents[12].text
        token_result = engine.search(text, np.random.default_rng(1))
        classic_result = classic.search(text)
        assert token_result.cluster == classic_result.cluster
        assert [r.position for r in token_result.results] == [
            r.position for r in classic_result.results
        ]
        assert [r.score for r in token_result.results] == [
            r.score for r in classic_result.results
        ]
        assert token_result.urls() == classic_result.urls()

    def test_no_token_phase(self, classic, corpus):
        result = classic.search(corpus.documents[3].text)
        assert result.traffic.phases() == ["ranking", "url"]

    def test_hint_download_dominates(self, engine, classic, corpus):
        """The SS6 trade: the one-time hint dwarfs a query's traffic."""
        hint_bytes = classic.hint_traffic.total_bytes()
        per_query = classic.search(corpus.documents[6].text).traffic
        assert hint_bytes > 5 * per_query.total_bytes()
        # And it matches the client-side storage requirement.
        assert classic.hint_storage_bytes() > 0
        assert hint_bytes >= classic.hint_storage_bytes()

    def test_online_traffic_below_token_mode(self, engine, classic, corpus):
        """Per steady-state query, classic mode is cheaper online --
        the ~4x overhead SS6 accepts to kill the hint download."""
        text = corpus.documents[18].text
        token_result = engine.search(text, np.random.default_rng(2))
        classic_result = classic.search(text)
        token_per_query = token_result.traffic.total_bytes()  # incl. token
        classic_per_query = classic_result.traffic.total_bytes()
        assert classic_per_query < token_per_query

    def test_hints_fetched_lazily(self, engine, corpus):
        fresh = ClassicTiptoeClient(engine, np.random.default_rng(3))
        assert fresh.hint_storage_bytes() == 0
        fresh.search(corpus.documents[0].text)
        assert fresh.hint_storage_bytes() > 0

    def test_fresh_keys_per_query(self, engine, classic, corpus):
        """Two searches produce unrelated ciphertext traffic sizes ==
        equal (privacy) but fresh keys mean fresh randomness."""
        r1 = classic.search(corpus.documents[1].text)
        r2 = classic.search(corpus.documents[1].text)
        assert r1.traffic.phase_summary() == r2.traffic.phase_summary()
