"""Tests for the exact keyword-search suite (SS9)."""

import numpy as np
import pytest

from repro.core.exact_backend import (
    ExactSearchSuite,
    canonicalize_address,
    canonicalize_phone,
    classify_entity,
)


class TestCanonicalization:
    def test_phone_canonical_form(self):
        assert canonicalize_phone("ph5551234567") == "ph5551234567"

    def test_phone_freetext_forms(self):
        assert canonicalize_phone("call 555-123-4567 now") == "ph5551234567"
        assert canonicalize_phone("(555) 123 4567") == "ph5551234567"
        assert canonicalize_phone("+1 555.123.4567") == "ph5551234567"

    def test_no_phone(self):
        assert canonicalize_phone("knee pain") is None
        assert canonicalize_phone("room 12") is None

    def test_address_forms(self):
        assert canonicalize_address("23mainst10001") == "23mainst10001"
        assert canonicalize_address("23 Main Street 10001") == "23mainst10001"
        assert canonicalize_address("visit 7 main st 55555") == "7mainst55555"

    def test_classify(self):
        assert classify_entity("ph5551234567") == "phone"
        assert classify_entity("23mainst10001") == "address"
        assert classify_entity("hello") is None


@pytest.fixture(scope="module")
def suite(corpus):
    return ExactSearchSuite.build(corpus.documents)


class TestSuite:
    def test_builds_backends_for_present_types(self, suite, corpus):
        entities = [d.entity for d in corpus.documents_with_entities()]
        expected = {classify_entity(e) for e in entities} - {None}
        assert set(suite.supported_types()) == expected

    def test_exact_query_finds_its_document(self, suite, corpus):
        rng = np.random.default_rng(0)
        for doc in corpus.documents_with_entities()[:4]:
            hits = suite.route(doc.entity, rng)
            kind = classify_entity(doc.entity)
            assert doc.doc_id in hits[kind]

    def test_non_entity_query_hits_no_backend(self, suite):
        assert suite.route("purely conceptual words") == {}

    def test_unknown_entity_returns_empty(self, suite):
        hits = suite.route("ph0000000000", np.random.default_rng(1))
        assert hits == {"phone": []}

    def test_merge_puts_exact_hit_first(self, suite, corpus):
        doc = corpus.documents_with_entities()[0]
        merged = suite.merge_results(
            doc.entity, [999, doc.doc_id, 5], np.random.default_rng(2)
        )
        assert merged[0] == doc.doc_id
        assert merged.count(doc.doc_id) == 1

    def test_merge_without_entity_preserves_semantic_order(self, suite):
        merged = suite.merge_results("plain words", [3, 1, 2])
        assert merged == [3, 1, 2]
