"""End-to-end integration tests for the full private search pipeline."""

import numpy as np
import pytest

from repro import TiptoeConfig, TiptoeEngine
from repro.homenc import TokenReuseError


class TestEndToEndSearch:
    def test_own_text_query_finds_document(self, engine, corpus):
        hits = 0
        for doc in (3, 40, 120):
            result = engine.search(
                corpus.documents[doc].text, np.random.default_rng(doc)
            )
            if doc in engine.result_doc_ids(result)[:5]:
                hits += 1
        assert hits >= 2

    def test_result_urls_are_corpus_urls(self, engine, corpus):
        result = engine.search(corpus.documents[1].text, np.random.default_rng(0))
        url_set = set(corpus.urls())
        assert result.urls()
        assert all(u in url_set for u in result.urls())

    def test_best_result_url_always_present(self, engine, corpus):
        # The fetched batch is chosen to contain the top match (SS5).
        result = engine.search(corpus.documents[9].text, np.random.default_rng(1))
        assert result.results[0].url is not None

    def test_scores_are_descending(self, engine, corpus):
        result = engine.search(corpus.documents[2].text, np.random.default_rng(2))
        scores = [r.score for r in result.results]
        assert scores == sorted(scores, reverse=True)

    def test_results_capped_at_k(self, corpus):
        engine = TiptoeEngine.build(
            corpus.texts(),
            corpus.urls(),
            TiptoeConfig(results_per_query=5),
            rng=np.random.default_rng(3),
        )
        result = engine.search(corpus.documents[0].text, np.random.default_rng(4))
        assert len(result.results) == 5

    def test_search_bit_identical_across_kernel_backends(
        self, engine, corpus
    ):
        """The full search path -- embed, encrypt, ranking scan, URL
        PIR, decrypt -- returns the same bits whichever kernel backend
        the server GEMMs run on."""
        import dataclasses

        mp_engine = TiptoeEngine(
            dataclasses.replace(
                engine.index,
                config=engine.index.config.with_(
                    kernel_backend="multiprocess"
                ),
            )
        )
        try:
            for text in ("alpha beta", "gamma delta"):
                a = engine.search(text, rng=np.random.default_rng(17))
                b = mp_engine.search(text, rng=np.random.default_rng(17))
                assert b.cluster == a.cluster
                assert [(r.position, r.score, r.url) for r in b.results] == [
                    (r.position, r.score, r.url) for r in a.results
                ]
        finally:
            mp_engine.close()

    def test_benchmark_queries_complete(self, engine, query_benchmark):
        rng = np.random.default_rng(5)
        client = engine.new_client(rng)
        for q in query_benchmark.queries[:5]:
            result = client.search(q.text)
            assert len(result.results) > 0


class TestTokens:
    def test_each_search_consumes_one_token(self, engine):
        client = engine.new_client(np.random.default_rng(6))
        client.fetch_tokens(2)
        assert client.tokens_available() == 2
        client.search("anything at all")
        assert client.tokens_available() == 1

    def test_tokens_fetched_lazily(self, engine):
        client = engine.new_client(np.random.default_rng(7))
        assert client.tokens_available() == 0
        client.search("something")
        assert client.tokens_available() == 0

    def test_consumed_token_cannot_be_reused(self, engine):
        token = engine.mint_token(np.random.default_rng(8))
        token.consume()
        with pytest.raises(TokenReuseError):
            token.consume()


class TestTrafficAccounting:
    def test_phases_logged(self, engine, corpus):
        result = engine.search(corpus.documents[4].text, np.random.default_rng(9))
        assert result.traffic.phases() == ["token", "ranking", "url"]
        for phase in ("token", "ranking", "url"):
            assert result.traffic.bytes_up(phase) > 0
            assert result.traffic.bytes_down(phase) > 0

    def test_token_phase_dominates_upload(self, engine, corpus):
        # SS6.3 / Table 7: most traffic happens before the query exists.
        result = engine.search(corpus.documents[6].text, np.random.default_rng(10))
        assert result.traffic.total_bytes("token") > result.traffic.total_bytes(
            "ranking"
        )

    def test_latency_model_positive(self, engine, corpus):
        result = engine.search(corpus.documents[7].text, np.random.default_rng(11))
        assert result.perceived_latency > 0
        assert result.token_latency > 0
        # Two online round trips at 50 ms RTT: at least 100 ms.
        assert result.perceived_latency >= 0.1


class TestImagePipeline:
    def test_text_to_image_search(self):
        from repro.corpus import ImageCorpus
        from repro.embeddings import HashingEmbedder
        from repro.embeddings.joint import JointEmbedder

        images = ImageCorpus.generate(num_images=120, latent_dim=16, seed=12)
        joint = JointEmbedder.fit(
            HashingEmbedder(dim=24),
            images.captions()[:60],
            images.latent_matrix()[:60],
        )
        embeddings = joint.embed_images(images.latent_matrix())
        engine = TiptoeEngine.build_from_embeddings(
            embeddings,
            images.urls(),
            query_embedder=joint,
            config=TiptoeConfig(embedding_dim=16, pca_dim=None),
            rng=np.random.default_rng(13),
        )
        hits = 0
        for img in (5, 25, 70):
            result = engine.search(
                images.images[img].caption, np.random.default_rng(img)
            )
            if img in engine.result_doc_ids(result)[:10]:
                hits += 1
        assert hits >= 2
