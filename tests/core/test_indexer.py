"""Tests for the data-loading batch jobs."""

import numpy as np
import pytest

from repro import TiptoeConfig
from repro.core.indexer import TiptoeIndex


class TestLayout:
    def test_matrix_shape_matches_figure_3(self, engine):
        layout = engine.index.layout
        assert layout.matrix.shape == (
            layout.rows,
            layout.dim * layout.num_clusters,
        )
        assert layout.rows == max(len(c) for c in layout.cluster_doc_ids)

    def test_matrix_blocks_hold_quantized_embeddings(self, engine):
        index = engine.index
        layout = index.layout
        from repro.embeddings.quantize import quantize

        quantized = quantize(
            index.embeddings * index.quantization_gain,
            index.config.quantization(),
        )
        for c in (0, layout.num_clusters - 1):
            for r, doc in enumerate(layout.cluster_doc_ids[c][:3]):
                block = layout.matrix[r, c * layout.dim : (c + 1) * layout.dim]
                assert np.array_equal(block, quantized[doc])

    def test_padding_rows_are_zero(self, engine):
        layout = engine.index.layout
        for c, docs in enumerate(layout.cluster_doc_ids):
            if len(docs) < layout.rows:
                block = layout.matrix[
                    len(docs) :, c * layout.dim : (c + 1) * layout.dim
                ]
                assert not block.any()

    def test_position_arithmetic(self, engine):
        layout = engine.index.layout
        assert layout.position_of(0, 0) == 0
        assert layout.position_of(1, 0) == layout.cluster_sizes[0]
        with pytest.raises(IndexError):
            layout.position_of(0, int(layout.cluster_sizes[0]))

    def test_every_position_maps_to_valid_doc(self, engine):
        layout = engine.index.layout
        total = int(layout.cluster_sizes.sum())
        for pos in range(0, total, 17):
            doc = engine.doc_id_of_position(pos)
            assert 0 <= doc < engine.index.num_docs


class TestUrlSide:
    def test_batches_cover_all_positions(self, engine):
        index = engine.index
        total = int(index.layout.cluster_sizes.sum())
        covered = sum(len(b.doc_ids) for b in index.url_batches)
        assert covered == total

    def test_batch_contents_match_layout(self, engine, corpus):
        index = engine.index
        layout = index.layout
        pos = layout.position_of(2, 1)
        doc = layout.doc_id_of(2, 1)
        batch = index.url_batches[pos // index.config.url_batch_size]
        assert batch.decompress()[pos] == corpus.urls()[doc]

    def test_pir_database_holds_batches(self, engine):
        index = engine.index
        assert index.url_db.num_records == len(index.url_batches)
        assert index.url_db.record(0) == index.url_batches[0].payload


class TestSchemes:
    def test_ranking_scheme_dimensions(self, engine):
        inner = engine.index.ranking_scheme.params.inner
        layout = engine.index.layout
        assert inner.m == layout.dim * layout.num_clusters
        assert inner.q_bits == 64
        assert inner.p == engine.index.config.ranking_plaintext_modulus()

    def test_url_scheme_dimensions(self, engine):
        inner = engine.index.url_scheme.params.inner
        assert inner.m == engine.index.url_db.num_cols
        assert inner.q_bits == 32

    def test_token_factory_has_both_services(self, engine):
        assert set(engine.index.token_factory.service_names) == {
            "ranking",
            "url",
        }

    def test_build_ledger_counts_work(self, engine):
        ledger = engine.index.build_ledger
        for component in ("embed", "cluster", "crypto"):
            assert ledger.total_ops(component) > 0


class TestValidation:
    def test_mismatched_urls_rejected(self):
        with pytest.raises(ValueError):
            TiptoeIndex.build(["a"], [], TiptoeConfig())

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            TiptoeIndex.build([], [], TiptoeConfig())

    def test_bad_embedding_shape_rejected(self):
        with pytest.raises(ValueError):
            TiptoeIndex.build(
                ["a", "b"],
                ["u1", "u2"],
                TiptoeConfig(embedding_dim=4, pca_dim=None),
                embeddings=np.zeros((2, 3)),
            )

    def test_metadata_and_model_sizes(self, engine):
        meta = engine.index.client_metadata()
        assert meta.download_bytes() > 0
        assert meta.download_bytes(compressed=True) < meta.download_bytes()
        assert engine.index.model_bytes() > 0
        assert engine.index.index_storage_bytes() > 0
