"""Tests for the cross-query batch scheduler (the admission queue)."""

import threading

import numpy as np
import pytest

from repro.core.cluster_runtime import ShardedRankingService, WorkerFailure
from repro.core.ranking import RankingClient
from repro.core.scheduler import BatchScheduler, SchedulerClosed
from repro.embeddings.quantize import quantize


@pytest.fixture(scope="module")
def sched_setup(engine):
    index = engine.index
    service = ShardedRankingService.build(
        index.ranking_scheme, index.layout.matrix, index.layout.dim, 4
    )
    client = RankingClient(
        index.ranking_scheme,
        dim=index.layout.dim,
        num_clusters=index.layout.num_clusters,
    )
    rng = np.random.default_rng(0)
    keys = index.ranking_scheme.gen_keys(rng)
    queries = [
        client.build_query(
            keys,
            quantize(
                index.embeddings[i] * index.quantization_gain,
                index.config.quantization(),
            ),
            i % index.layout.num_clusters,
            rng,
        )
        for i in range(10)
    ]
    return service, queries


def submit_concurrently(scheduler, queries):
    """One thread per query, closed loop; returns results/errors by slot."""
    results = [None] * len(queries)
    errors = [None] * len(queries)

    def run(i):
        try:
            results[i] = scheduler.submit(queries[i])
        except BaseException as exc:
            errors[i] = exc

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(len(queries))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results, errors


class TestBatchedExactness:
    def test_concurrent_submits_bit_identical_to_answer(self, sched_setup):
        service, queries = sched_setup
        expected = [service.answer(q).values for q in queries]
        with BatchScheduler(service, max_batch_size=4) as scheduler:
            results, errors = submit_concurrently(scheduler, queries)
        assert all(e is None for e in errors)
        for got, want in zip(results, expected):
            assert np.array_equal(got.values, want)

    def test_ragged_final_batch(self, sched_setup):
        """10 queries at batch size 4: the tail batch is under-full."""
        service, queries = sched_setup
        with BatchScheduler(
            service, max_batch_size=4, max_batch_wait_ms=20.0
        ) as scheduler:
            results, errors = submit_concurrently(scheduler, queries)
            stats = scheduler.stats
        assert all(e is None for e in errors)
        assert stats.queries == len(queries)
        assert stats.max_batch <= 4
        for got, q in zip(results, queries):
            assert np.array_equal(got.values, service.answer(q).values)

    def test_lone_query_dispatches_within_wait_bound(self, sched_setup):
        """Q=1: an idle scheduler must not hold a query forever."""
        service, queries = sched_setup
        with BatchScheduler(
            service, max_batch_size=64, max_batch_wait_ms=5.0
        ) as scheduler:
            answer = scheduler.submit(queries[0])
        assert np.array_equal(
            answer.values, service.answer(queries[0]).values
        )

    def test_queries_coalesce_into_batches(self, sched_setup):
        service, queries = sched_setup
        with BatchScheduler(
            service, max_batch_size=5, max_batch_wait_ms=50.0
        ) as scheduler:
            submit_concurrently(scheduler, queries)
            stats = scheduler.stats
        assert stats.queries == len(queries)
        assert stats.batches < len(queries)  # actually batched
        assert stats.max_batch > 1


class TestFaultScoping:
    def test_mid_batch_worker_failure_fails_only_that_batch(
        self, sched_setup
    ):
        """A dead shard fails the queries in flight -- the scheduler
        and service keep serving the next batch."""
        service, queries = sched_setup
        with BatchScheduler(
            service, max_batch_size=4, max_batch_wait_ms=5.0
        ) as scheduler:
            service.fail_worker(1)
            try:
                _, errors = submit_concurrently(scheduler, queries[:4])
                assert all(isinstance(e, WorkerFailure) for e in errors)
                assert scheduler.stats.failed_queries == 4
            finally:
                service.revive_worker(1)
            # The same scheduler still answers correctly afterwards.
            answer = scheduler.submit(queries[5])
            assert np.array_equal(
                answer.values, service.answer(queries[5]).values
            )
            assert scheduler.running


class TestLifecycle:
    def test_submit_before_start_raises(self, sched_setup):
        service, queries = sched_setup
        scheduler = BatchScheduler(service, max_batch_size=2)
        with pytest.raises(SchedulerClosed):
            scheduler.submit(queries[0])

    def test_submit_after_stop_raises(self, sched_setup):
        service, queries = sched_setup
        scheduler = BatchScheduler(service, max_batch_size=2)
        scheduler.start()
        scheduler.stop()
        with pytest.raises(SchedulerClosed):
            scheduler.submit(queries[0])

    def test_start_stop_idempotent(self, sched_setup):
        service, _ = sched_setup
        scheduler = BatchScheduler(service, max_batch_size=2)
        scheduler.start()
        scheduler.start()
        scheduler.stop()
        scheduler.stop()
        assert not scheduler.running

    def test_restart_after_stop(self, sched_setup):
        service, queries = sched_setup
        scheduler = BatchScheduler(service, max_batch_size=2)
        scheduler.start()
        scheduler.stop()
        scheduler.start()
        try:
            answer = scheduler.submit(queries[0])
            assert np.array_equal(
                answer.values, service.answer(queries[0]).values
            )
        finally:
            scheduler.stop()

    def test_invalid_parameters_rejected(self, sched_setup):
        service, _ = sched_setup
        with pytest.raises(ValueError):
            BatchScheduler(service, max_batch_size=0)
        with pytest.raises(ValueError):
            BatchScheduler(service, max_batch_size=2, max_batch_wait_ms=-1.0)

    def test_health_reports_counters(self, sched_setup):
        service, queries = sched_setup
        with BatchScheduler(service, max_batch_size=4) as scheduler:
            submit_concurrently(scheduler, queries[:4])
            report = scheduler.health()
        assert report["running"] is True
        assert report["max_batch_size"] == 4
        assert report["queries"] == 4
        assert report["batches"] >= 1
        assert report["failed_queries"] == 0
        assert report["mean_batch_size"] > 0


class TestServiceIntegration:
    def test_attach_starts_and_stops_with_service(self, sched_setup, engine):
        index = engine.index
        service = ShardedRankingService.build(
            index.ranking_scheme, index.layout.matrix, index.layout.dim, 4
        )
        scheduler = BatchScheduler(service, max_batch_size=4)
        service.attach_scheduler(scheduler)
        service.open()
        assert scheduler.running
        assert service.health()["scheduler"]["running"] is True
        service.close()
        assert not scheduler.running

    def test_wire_answers_route_through_scheduler(self, sched_setup):
        """Single-query wire requests coalesce via the admission queue."""
        from repro.net import wire
        from repro.net.rpc import frame, unframe

        service, queries = sched_setup
        scheduler = BatchScheduler(
            service, max_batch_size=4, max_batch_wait_ms=5.0
        )
        service.attach_scheduler(scheduler)
        service.open()
        try:
            before = scheduler.stats.queries
            blob = wire.encode_ciphertext(queries[0].ciphertext)
            _, payload = unframe(
                service.endpoint.dispatch(frame("answer", blob))
            )
            values, _ = wire.decode_answer(payload)
            assert np.array_equal(values, service.answer(queries[0]).values)
            assert scheduler.stats.queries == before + 1
        finally:
            service.close()
            service.attach_scheduler(None)

    def test_engine_config_attaches_scheduler(self, corpus):
        from repro import TiptoeConfig, TiptoeEngine

        cfg = TiptoeConfig(max_batch_size=4, max_batch_wait_ms=1.0)
        with TiptoeEngine.build(
            corpus.texts()[:100],
            corpus.urls()[:100],
            cfg,
            rng=np.random.default_rng(7),
        ) as engine:
            scheduler = engine.ranking_service.scheduler
            assert scheduler is not None and scheduler.running
            # End-to-end search works with the batcher in front.
            engine.search(corpus.documents[0].text, np.random.default_rng(8))
        assert not scheduler.running

    def test_default_config_has_no_scheduler(self, engine):
        assert engine.ranking_service.scheduler is None
