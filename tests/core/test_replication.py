"""Tests for the replicated ranking deployment."""

import numpy as np
import pytest

from repro.core.cluster_runtime import (
    ReplicatedRankingService,
    ShardedRankingService,
    WorkerFailure,
)
from repro.embeddings.quantize import quantize


@pytest.fixture(scope="module")
def replicated(engine):
    index = engine.index
    return ReplicatedRankingService.build(
        index.ranking_scheme,
        index.layout.matrix,
        dim=index.layout.dim,
        num_workers=4,
        replicas=2,
    )


def make_query(engine, seed):
    index = engine.index
    from repro.core.ranking import RankingClient

    client = RankingClient(
        index.ranking_scheme,
        dim=index.layout.dim,
        num_clusters=index.layout.num_clusters,
    )
    token = engine.mint_token(np.random.default_rng(seed))
    keys, hints = token.consume()
    q_emb = quantize(index.embeddings[seed % 50] * index.quantization_gain, index.config.quantization())
    query = client.build_query(
        keys["ranking"], q_emb, 1, np.random.default_rng(seed + 1)
    )
    return client, keys, hints, query


class TestReplication:
    def test_matches_unreplicated_answers(self, engine, replicated):
        _, _, _, query = make_query(engine, 0)
        base = ShardedRankingService.build(
            engine.index.ranking_scheme,
            engine.index.layout.matrix,
            dim=engine.index.layout.dim,
            num_workers=4,
        )
        assert np.array_equal(
            replicated.answer(query).values, base.answer(query).values
        )

    def test_survives_single_replica_failures(self, engine, replicated):
        client, keys, hints, query = make_query(engine, 2)
        want = replicated.answer(query).values
        replicated.fail_worker(shard=0, replica=0)
        replicated.fail_worker(shard=2, replica=1)
        got = replicated.answer(query).values
        assert np.array_equal(got, want)
        scores = client.decode_scores(
            keys["ranking"],
            type(replicated.answer(query))(
                values=got, bytes_per_element=8
            ),
            hints["ranking"],
        )
        assert scores is not None

    def test_fails_when_whole_shard_is_down(self, engine, replicated):
        _, _, _, query = make_query(engine, 4)
        replicated.fail_worker(shard=1, replica=0)
        replicated.fail_worker(shard=1, replica=1)
        with pytest.raises(WorkerFailure):
            replicated.answer(query)
        # Revive for other tests sharing the fixture.
        replicated.replica_groups[1][0].alive = True

    def test_storage_cost_scales_with_replicas(self, engine):
        index = engine.index
        single = ShardedRankingService.build(
            index.ranking_scheme, index.layout.matrix, index.layout.dim, 4
        )
        triple = ReplicatedRankingService.build(
            index.ranking_scheme,
            index.layout.matrix,
            index.layout.dim,
            4,
            replicas=3,
        )
        base_total = sum(w.storage_bytes() for w in single.workers)
        assert triple.storage_bytes() == 3 * base_total

    def test_replica_validation(self, engine):
        index = engine.index
        with pytest.raises(ValueError):
            ReplicatedRankingService.build(
                index.ranking_scheme,
                index.layout.matrix,
                index.layout.dim,
                2,
                replicas=0,
            )


class TestReplicatedLifecycle:
    """ReplicatedRankingService carries the full Service lifecycle."""

    def _build(self, engine, replicas=2):
        index = engine.index
        return ReplicatedRankingService.build(
            index.ranking_scheme,
            index.layout.matrix,
            dim=index.layout.dim,
            num_workers=3,
            replicas=replicas,
        )

    def test_is_a_service(self, replicated):
        from repro.net.service import Service

        assert isinstance(replicated, Service)
        assert replicated.service_name == "ranking"

    def test_health_transitions(self, engine):
        service = self._build(engine)
        assert service.health()["status"] == "ok"
        service.fail_worker(shard=0, replica=0)
        report = service.health()
        assert report["status"] == "degraded"
        assert report["live_replicas"][0] == 1
        service.fail_worker(shard=0, replica=1)
        assert service.health()["status"] == "failed"

    def test_close_releases_cached_plans(self, engine):
        _, _, _, query = make_query(engine, 11)
        service = self._build(engine)
        service.answer_batch([query])
        assert any(
            w._plan is not None
            for group in service.replica_groups
            for w in group
        )
        service.close()
        assert all(
            w._plan is None
            for group in service.replica_groups
            for w in group
        )
        service.close()  # idempotent

    def test_context_manager(self, engine):
        _, _, _, query = make_query(engine, 12)
        with self._build(engine) as service:
            service.answer_batch([query])
        assert all(
            w._plan is None
            for group in service.replica_groups
            for w in group
        )

    def test_wire_endpoint_answers(self, engine):
        from repro.net import wire
        from repro.net.rpc import frame, unframe

        _, _, _, query = make_query(engine, 13)
        with self._build(engine) as service:
            blob = wire.encode_ciphertext(query.ciphertext)
            _, payload = unframe(
                service.endpoint.dispatch(frame("answer", blob))
            )
            values, _ = wire.decode_answer(payload)
            assert np.array_equal(values, service.answer(query).values)


class TestReplicatedBatching:
    def test_answer_batch_bit_identical(self, engine, replicated):
        queries = [make_query(engine, 20 + i)[3] for i in range(3)]
        individual = [replicated.answer(q).values for q in queries]
        batched = replicated.answer_batch(queries)
        for got, want in zip(batched, individual):
            assert np.array_equal(got.values, want)

    def test_empty_batch(self, replicated):
        assert replicated.answer_batch([]) == []

    def test_batch_survives_single_replica_failures(self, engine):
        service = ReplicatedRankingService.build(
            engine.index.ranking_scheme,
            engine.index.layout.matrix,
            dim=engine.index.layout.dim,
            num_workers=3,
            replicas=2,
        )
        queries = [make_query(engine, 30 + i)[3] for i in range(2)]
        want = [a.values for a in service.answer_batch(queries)]
        service.fail_worker(shard=1, replica=0)
        got = [a.values for a in service.answer_batch(queries)]
        for g, w in zip(got, want):
            assert np.array_equal(g, w)
        service.fail_worker(shard=1, replica=1)
        with pytest.raises(WorkerFailure):
            service.answer_batch(queries)
