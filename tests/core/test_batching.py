"""Tests for server-side query batching."""

import time

import numpy as np
import pytest

from repro.core.cluster_runtime import ShardedRankingService, WorkerFailure
from repro.core.ranking import RankingClient
from repro.embeddings.quantize import quantize


@pytest.fixture(scope="module")
def batch_setup(engine):
    index = engine.index
    service = ShardedRankingService.build(
        index.ranking_scheme, index.layout.matrix, index.layout.dim, 4
    )
    client = RankingClient(
        index.ranking_scheme,
        dim=index.layout.dim,
        num_clusters=index.layout.num_clusters,
    )
    rng = np.random.default_rng(0)
    keys = index.ranking_scheme.gen_keys(rng)
    queries = [
        client.build_query(
            keys,
            quantize(index.embeddings[i] * index.quantization_gain, index.config.quantization()),
            i % index.layout.num_clusters,
            rng,
        )
        for i in range(6)
    ]
    return service, queries


class TestBatchedAnswers:
    def test_matches_individual_answers(self, batch_setup):
        service, queries = batch_setup
        individual = [service.answer(q).values for q in queries]
        batched = [a.values for a in service.answer_batch(queries)]
        for got, want in zip(batched, individual):
            assert np.array_equal(got, want)

    def test_empty_batch(self, batch_setup):
        service, _ = batch_setup
        assert service.answer_batch([]) == []

    def test_ledger_counts_per_query_work(self, batch_setup):
        service, queries = batch_setup
        before = service.ledger.total_ops()
        service.answer_batch(queries)
        added = service.ledger.total_ops() - before
        matrix_entries = sum(
            w.matrix_slice.size for w in service.workers
        )
        assert added == 2 * matrix_entries * len(queries)

    def test_worker_failure_blocks_batch(self, batch_setup):
        service, queries = batch_setup
        service.fail_worker(1)
        with pytest.raises(WorkerFailure):
            service.answer_batch(queries)
        service.revive_worker(1)

    def test_batching_is_not_slower_per_query(self, batch_setup):
        service, queries = batch_setup
        t0 = time.perf_counter()
        for _ in range(3):
            for q in queries:
                service.answer(q)
        individual_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(3):
            service.answer_batch(queries)
        batched_s = time.perf_counter() - t0
        assert batched_s < individual_s * 1.5
