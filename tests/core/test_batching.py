"""Tests for server-side query batching."""

import time

import numpy as np
import pytest

from repro.core.cluster_runtime import ShardedRankingService, WorkerFailure
from repro.core.ranking import RankingClient
from repro.embeddings.quantize import quantize


@pytest.fixture(scope="module")
def batch_setup(engine):
    index = engine.index
    service = ShardedRankingService.build(
        index.ranking_scheme, index.layout.matrix, index.layout.dim, 4
    )
    client = RankingClient(
        index.ranking_scheme,
        dim=index.layout.dim,
        num_clusters=index.layout.num_clusters,
    )
    rng = np.random.default_rng(0)
    keys = index.ranking_scheme.gen_keys(rng)
    queries = [
        client.build_query(
            keys,
            quantize(index.embeddings[i] * index.quantization_gain, index.config.quantization()),
            i % index.layout.num_clusters,
            rng,
        )
        for i in range(6)
    ]
    return service, queries


class TestBatchedAnswers:
    def test_matches_individual_answers(self, batch_setup):
        service, queries = batch_setup
        individual = [service.answer(q).values for q in queries]
        batched = [a.values for a in service.answer_batch(queries)]
        for got, want in zip(batched, individual):
            assert np.array_equal(got, want)

    def test_empty_batch(self, batch_setup):
        service, _ = batch_setup
        assert service.answer_batch([]) == []

    def test_ledger_counts_per_query_work(self, batch_setup):
        service, queries = batch_setup
        before = service.ledger.total_ops()
        service.answer_batch(queries)
        added = service.ledger.total_ops() - before
        matrix_entries = sum(
            w.matrix_slice.size for w in service.workers
        )
        assert added == 2 * matrix_entries * len(queries)

    def test_worker_failure_blocks_batch(self, batch_setup):
        service, queries = batch_setup
        service.fail_worker(1)
        with pytest.raises(WorkerFailure):
            service.answer_batch(queries)
        service.revive_worker(1)

    def test_batching_is_not_slower_per_query(self, batch_setup):
        service, queries = batch_setup
        t0 = time.perf_counter()
        for _ in range(3):
            for q in queries:
                service.answer(q)
        individual_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(3):
            service.answer_batch(queries)
        batched_s = time.perf_counter() - t0
        assert batched_s < individual_s * 1.5


class TestParallelBatch:
    """Regression: answer_batch ran shards serially even when
    ``parallel=True``; it must fan out AND stay bit-identical."""

    def _build(self, engine, parallel):
        index = engine.index
        service = ShardedRankingService.build(
            index.ranking_scheme, index.layout.matrix, index.layout.dim, 4
        )
        service.parallel = parallel
        return service

    def test_parallel_batch_bit_identical_to_serial(self, engine, batch_setup):
        _, queries = batch_setup
        serial = self._build(engine, parallel=False)
        parallel = self._build(engine, parallel=True)
        try:
            a_serial = serial.answer_batch(queries)
            a_parallel = parallel.answer_batch(queries)
            for got, want in zip(a_parallel, a_serial):
                assert np.array_equal(got.values, want.values)
        finally:
            serial.close()
            parallel.close()

    def test_parallel_batch_matches_individual_answers(self, engine, batch_setup):
        _, queries = batch_setup
        with self._build(engine, parallel=True) as service:
            individual = [service.answer(q).values for q in queries]
            batched = [a.values for a in service.answer_batch(queries)]
        for got, want in zip(batched, individual):
            assert np.array_equal(got, want)

    def test_parallel_batch_runs_on_pool_threads(
        self, engine, batch_setup, monkeypatch
    ):
        import threading

        from repro.core.cluster_runtime import RankingWorker

        _, queries = batch_setup
        threads = set()
        real_answer = RankingWorker.answer_stacked

        def spying_answer(worker, chunk):
            threads.add(threading.get_ident())
            return real_answer(worker, chunk)

        monkeypatch.setattr(RankingWorker, "answer_stacked", spying_answer)
        with self._build(engine, parallel=True) as service:
            service.answer_batch(queries)
        # The regression ran every shard on the calling thread; the fix
        # hands all shard scans to pool threads.
        assert threads and threading.get_ident() not in threads

    def test_worker_failure_blocks_parallel_batch(self, engine, batch_setup):
        _, queries = batch_setup
        with self._build(engine, parallel=True) as service:
            service.fail_worker(2)
            with pytest.raises(WorkerFailure):
                service.answer_batch(queries)


class TestPoolLifecycle:
    """Regression: the shard thread pool was never shut down."""

    def test_close_shuts_down_pool(self, engine, batch_setup):
        _, queries = batch_setup
        service = ShardedRankingService.build(
            engine.index.ranking_scheme,
            engine.index.layout.matrix,
            engine.index.layout.dim,
            3,
        )
        service.parallel = True
        service.answer(queries[0])
        assert service._pool is not None
        service.close()
        assert service._pool is None
        service.close()  # idempotent

    def test_answer_after_close_recreates_pool(self, engine, batch_setup):
        _, queries = batch_setup
        service = ShardedRankingService.build(
            engine.index.ranking_scheme,
            engine.index.layout.matrix,
            engine.index.layout.dim,
            3,
        )
        service.parallel = True
        want = service.answer(queries[0]).values
        service.close()
        got = service.answer(queries[0]).values
        assert np.array_equal(got, want)
        service.close()

    def test_context_manager_closes(self, engine, batch_setup):
        _, queries = batch_setup
        with ShardedRankingService.build(
            engine.index.ranking_scheme,
            engine.index.layout.matrix,
            engine.index.layout.dim,
            3,
        ) as service:
            service.parallel = True
            service.answer(queries[0])
            assert service._pool is not None
        assert service._pool is None

    def test_engine_close_reaches_ranking_pool(self, corpus):
        from repro import TiptoeConfig, TiptoeEngine

        with TiptoeEngine.build(
            corpus.texts()[:120],
            corpus.urls()[:120],
            TiptoeConfig(),
            rng=np.random.default_rng(4),
        ) as engine:
            engine.ranking_service.parallel = True
            engine.search(corpus.documents[0].text, np.random.default_rng(5))
        assert engine.ranking_service._pool is None
