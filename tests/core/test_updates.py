"""Tests for continuous corpus updates (SS3.2)."""

import numpy as np
import pytest

from repro import TiptoeEngine
from repro.core.updates import (
    apply_update,
    assign_new_documents,
    metadata_refresh_bytes,
)


@pytest.fixture(scope="module")
def updated(engine, corpus):
    new_texts = [doc.text + " fresh update" for doc in corpus.documents[:5]]
    new_urls = [f"https://www.new-{i}.com/page" for i in range(5)]
    index, report = apply_update(
        engine.index,
        new_texts,
        new_urls,
        corpus.texts(),
        corpus.urls(),
        rng=np.random.default_rng(0),
    )
    return index, report, new_urls


class TestApplyUpdate:
    def test_document_count_grows(self, updated, engine):
        index, report, _ = updated
        assert report.added_docs == 5
        assert index.num_docs == engine.index.num_docs + 5
        assert report.new_num_docs == index.num_docs

    def test_old_index_untouched(self, updated, engine, corpus):
        _, _, _ = updated
        assert engine.index.num_docs == corpus.num_docs
        assert len(engine.index.clusters.doc_to_clusters) == corpus.num_docs

    def test_new_docs_assigned_to_similar_clusters(self, updated, engine):
        index, report, _ = updated
        # Each new doc is a near-copy of an original doc, so it should
        # land in (one of) that doc's clusters.
        for offset in range(5):
            new_id = engine.index.num_docs + offset
            new_clusters = index.clusters.doc_to_clusters[new_id]
            original = set(engine.index.clusters.doc_to_clusters[offset])
            assert set(new_clusters) & original

    def test_updated_index_serves_queries(self, updated, engine, corpus):
        index, _, new_urls = updated
        new_engine = TiptoeEngine(index=index)
        result = new_engine.search(
            corpus.documents[0].text + " fresh update",
            np.random.default_rng(1),
        )
        doc_ids = new_engine.result_doc_ids(result)[:5]
        # Either the updated copy or the near-identical original wins.
        assert doc_ids and (engine.index.num_docs + 0 in doc_ids or 0 in doc_ids)

    def test_new_urls_retrievable(self, updated, engine, corpus):
        index, _, new_urls = updated
        new_engine = TiptoeEngine(index=index)
        found = set()
        for offset in range(5):
            result = new_engine.search(
                corpus.documents[offset].text + " fresh update",
                np.random.default_rng(10 + offset),
            )
            found |= set(result.urls())
        assert found & set(new_urls)

    def test_old_tokens_do_not_fit_new_index(self, updated, engine):
        index, _, _ = updated
        old_token = engine.mint_token(np.random.default_rng(2))
        _, hints = old_token.consume()
        # The ranking matrix width changed (or at least the hint did):
        # the old hint product has the wrong shape/content.
        assert (
            len(hints["ranking"]) != index.layout.rows
            or engine.index.ranking_scheme.params.inner.m
            != index.ranking_scheme.params.inner.m
            or not np.array_equal(
                engine.index.ranking_prep.switched_hint.shape,
                index.ranking_prep.switched_hint.shape,
            )
            or not np.array_equal(
                engine.index.ranking_prep.switched_hint,
                index.ranking_prep.switched_hint,
            )
        )

    def test_metadata_refresh_is_compact(self, updated):
        index, report, _ = updated
        assert report.metadata_refresh_bytes == metadata_refresh_bytes(index)
        # Compressed refresh is ~1 byte/dim/centroid -- far below the
        # uncompressed metadata, matching the 18.7-vs-68 MiB ratio.
        assert (
            report.metadata_refresh_bytes
            < index.client_metadata().download_bytes()
        )

    def test_validation(self, engine, corpus):
        with pytest.raises(ValueError):
            apply_update(engine.index, ["a"], [], corpus.texts(), corpus.urls())
        with pytest.raises(ValueError):
            apply_update(engine.index, [], [], corpus.texts(), corpus.urls())


class TestAssignment:
    def test_assignment_picks_nearest_centroid(self, engine):
        centroids = engine.index.clusters.centroids
        got = assign_new_documents(engine.index, centroids[:3])
        assert got == [0, 1, 2]
