"""Tests for continuous corpus updates (SS3.2)."""

import numpy as np
import pytest

from repro import TiptoeEngine
from repro.core.updates import (
    apply_update,
    assign_new_documents,
    metadata_refresh_bytes,
    publish_snapshot,
    reindex,
)


@pytest.fixture(scope="module")
def updated(engine, corpus):
    new_texts = [doc.text + " fresh update" for doc in corpus.documents[:5]]
    new_urls = [f"https://www.new-{i}.com/page" for i in range(5)]
    index, report = apply_update(
        engine.index,
        new_texts,
        new_urls,
        corpus.texts(),
        corpus.urls(),
        rng=np.random.default_rng(0),
    )
    return index, report, new_urls


class TestApplyUpdate:
    def test_document_count_grows(self, updated, engine):
        index, report, _ = updated
        assert report.added_docs == 5
        assert index.num_docs == engine.index.num_docs + 5
        assert report.new_num_docs == index.num_docs

    def test_old_index_untouched(self, updated, engine, corpus):
        _, _, _ = updated
        assert engine.index.num_docs == corpus.num_docs
        assert len(engine.index.clusters.doc_to_clusters) == corpus.num_docs

    def test_new_docs_assigned_to_similar_clusters(self, updated, engine):
        index, report, _ = updated
        # Each new doc is a near-copy of an original doc, so it should
        # land in (one of) that doc's clusters.
        for offset in range(5):
            new_id = engine.index.num_docs + offset
            new_clusters = index.clusters.doc_to_clusters[new_id]
            original = set(engine.index.clusters.doc_to_clusters[offset])
            assert set(new_clusters) & original

    def test_updated_index_serves_queries(self, updated, engine, corpus):
        index, _, new_urls = updated
        new_engine = TiptoeEngine(index=index)
        result = new_engine.search(
            corpus.documents[0].text + " fresh update",
            np.random.default_rng(1),
        )
        doc_ids = new_engine.result_doc_ids(result)[:5]
        # Either the updated copy or the near-identical original wins.
        assert doc_ids and (engine.index.num_docs + 0 in doc_ids or 0 in doc_ids)

    def test_new_urls_retrievable(self, updated, engine, corpus):
        index, _, new_urls = updated
        new_engine = TiptoeEngine(index=index)
        found = set()
        for offset in range(5):
            result = new_engine.search(
                corpus.documents[offset].text + " fresh update",
                np.random.default_rng(10 + offset),
            )
            found |= set(result.urls())
        assert found & set(new_urls)

    def test_old_tokens_do_not_fit_new_index(self, updated, engine):
        index, _, _ = updated
        old_token = engine.mint_token(np.random.default_rng(2))
        _, hints = old_token.consume()
        # The ranking matrix width changed (or at least the hint did):
        # the old hint product has the wrong shape/content.
        assert (
            len(hints["ranking"]) != index.layout.rows
            or engine.index.ranking_scheme.params.inner.m
            != index.ranking_scheme.params.inner.m
            or not np.array_equal(
                engine.index.ranking_prep.switched_hint.shape,
                index.ranking_prep.switched_hint.shape,
            )
            or not np.array_equal(
                engine.index.ranking_prep.switched_hint,
                index.ranking_prep.switched_hint,
            )
        )

    def test_metadata_refresh_is_compact(self, updated):
        index, report, _ = updated
        assert report.metadata_refresh_bytes == metadata_refresh_bytes(index)
        # Compressed refresh is ~1 byte/dim/centroid -- far below the
        # uncompressed metadata, matching the 18.7-vs-68 MiB ratio.
        assert (
            report.metadata_refresh_bytes
            < index.client_metadata().download_bytes()
        )

    def test_validation(self, engine, corpus):
        with pytest.raises(ValueError):
            apply_update(engine.index, ["a"], [], corpus.texts(), corpus.urls())
        with pytest.raises(ValueError):
            apply_update(engine.index, [], [], corpus.texts(), corpus.urls())


class TestAssignment:
    def test_assignment_picks_nearest_centroid(self, engine):
        centroids = engine.index.clusters.centroids
        got = assign_new_documents(engine.index, centroids[:3])
        assert got == [0, 1, 2]


class TestPublishSnapshot:
    def test_apply_update_round_trips_through_artifacts(
        self, updated, tmp_path
    ):
        """The updated index survives publish -> load and still serves."""
        from repro.core import artifacts

        index, _, new_urls = updated
        tag = publish_snapshot(index, tmp_path / "snap")
        loaded = artifacts.load_index(tmp_path / "snap")
        assert loaded.num_docs == index.num_docs
        assert np.array_equal(
            loaded.ranking_prep.hint, index.ranking_prep.hint
        )
        engine = TiptoeEngine(index=loaded)
        result = engine.search("fresh update", np.random.default_rng(3))
        assert result.results
        assert len(tag) == 8

    def test_generation_tag_stable_across_save_load(self, updated, tmp_path):
        """Save -> load -> save again reproduces the same generation tag."""
        from repro.core import artifacts

        index, _, _ = updated
        first = publish_snapshot(index, tmp_path / "a")
        loaded = artifacts.load_index(tmp_path / "a")
        second = publish_snapshot(loaded, tmp_path / "b")
        assert first == second
        assert artifacts.artifact_digest(
            tmp_path / "a"
        ) == artifacts.artifact_digest(tmp_path / "b")


class TestReindex:
    @pytest.fixture(scope="class")
    def snapshots(self, tmp_path_factory):
        """A base streaming build plus delta and full rebuilds of a
        ~4%-mutated snapshot of the same corpus."""
        from repro.core.config import TiptoeConfig
        from repro.corpus.source import (
            MutatedDocumentSource,
            SyntheticDocumentSource,
        )
        from repro.corpus.synthetic import SyntheticCorpusConfig
        from repro.ingest import IngestConfig, run_ingest

        root = tmp_path_factory.mktemp("reindex")
        config = TiptoeConfig(target_cluster_size=16)
        ingest = IngestConfig(batch_size=64, sample_size=256)
        base = SyntheticDocumentSource(
            SyntheticCorpusConfig(num_docs=240, seed=7), batch_size=64
        )
        run_ingest(
            base, config, root / "base", spool_dir=root / "spool",
            ingest=ingest,
        )
        mutated = MutatedDocumentSource(base, 0.04, mutate_seed=3)
        delta = reindex(
            root / "base", mutated, root / "delta",
            spool_dir=root / "spool", ingest=ingest,
        )
        full = reindex(
            root / "base", mutated, root / "full",
            spool_dir=root / "spool", ingest=ingest, full=True,
        )
        return root, mutated, delta, full

    def test_delta_matches_full_bit_for_bit(self, snapshots):
        from repro.core import artifacts

        root, _, delta, full = snapshots
        assert delta.generation_tag == full.generation_tag
        assert artifacts.artifact_digest(
            root / "delta"
        ) == artifacts.artifact_digest(root / "full")

    def test_delta_reembeds_only_mutated_documents(self, snapshots):
        _, mutated, delta, full = snapshots
        changed = len(mutated.mutated_ids(delta.num_docs))
        assert delta.docs_embedded == changed
        assert delta.docs_reused == delta.num_docs - changed
        assert full.docs_embedded == full.num_docs

    def test_delta_reencrypts_only_affected_clusters(self, snapshots):
        _, _, delta, full = snapshots
        assert 0 < delta.clusters_encrypted < delta.num_clusters
        assert (
            delta.clusters_encrypted + delta.clusters_reused
            == delta.num_clusters
        )
        assert full.clusters_encrypted == full.num_clusters

    def test_new_generation_is_swap_ready(self, snapshots):
        from repro.core import artifacts

        root, _, delta, _ = snapshots
        assert delta.generation_tag == artifacts.generation_tag(
            root / "delta"
        )
        assert delta.generation_tag != artifacts.generation_tag(
            root / "base"
        )
