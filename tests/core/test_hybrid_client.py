"""Tests for hybrid (semantic + exact-backend) client search."""

import numpy as np
import pytest

from repro import TiptoeConfig, TiptoeEngine


@pytest.fixture(scope="module")
def hybrid_engine(corpus):
    engine = TiptoeEngine.build(
        corpus.texts(),
        corpus.urls(),
        TiptoeConfig(),
        rng=np.random.default_rng(0),
    )
    engine.attach_exact_backends(corpus.documents)
    return engine


class TestHybridSearch:
    def test_exact_query_puts_target_first(self, hybrid_engine, corpus):
        doc = corpus.documents_with_entities()[1]
        client = hybrid_engine.new_client(np.random.default_rng(1))
        result, merged = client.search_hybrid(doc.entity)
        assert merged[0] == doc.doc_id

    def test_semantic_query_unaffected(self, hybrid_engine, corpus):
        client = hybrid_engine.new_client(np.random.default_rng(2))
        result, merged = client.search_hybrid(corpus.documents[4].text[:40])
        assert merged == hybrid_engine.result_doc_ids(result)

    def test_without_backends_falls_back(self, engine, corpus):
        assert engine.exact_suite is None
        client = engine.new_client(np.random.default_rng(3))
        result, merged = client.search_hybrid("plain words")
        assert merged == engine.result_doc_ids(result)

    def test_hybrid_still_consumes_one_token(self, hybrid_engine, corpus):
        client = hybrid_engine.new_client(np.random.default_rng(4))
        client.fetch_tokens(1)
        client.search_hybrid(corpus.documents[0].text[:30])
        assert client.tokens_available() == 0
