"""Query-privacy structural tests (Definition 2.1, Appendix D).

We cannot test computational indistinguishability directly, but the
definition has checkable structural consequences: the client's message
flow and packet sizes must not depend on the query string, and the
server-visible ciphertexts must carry no plaintext query material.
"""

import numpy as np
import pytest

from repro.core.ranking import build_query_vector
from repro.embeddings.quantize import quantize


QUERIES = [
    "covid19 symptoms",
    "x",
    "a very long and detailed query about many different things " * 5,
]


class TestMessageShape:
    def test_message_sizes_are_query_independent(self, engine):
        summaries = []
        for i, q in enumerate(QUERIES):
            result = engine.search(q, np.random.default_rng(i))
            summaries.append(result.traffic.phase_summary())
        assert summaries[0] == summaries[1] == summaries[2]

    def test_message_flow_is_query_independent(self, engine):
        flows = []
        for i, q in enumerate(QUERIES):
            result = engine.search(q, np.random.default_rng(100 + i))
            flows.append(
                [(m.phase, m.direction) for m in result.traffic.messages]
            )
        assert flows[0] == flows[1] == flows[2]

    def test_answer_row_count_independent_of_cluster(self, engine):
        # The server always returns max-cluster-size rows, padding
        # smaller clusters -- it cannot learn which cluster was probed.
        rows = engine.index.layout.rows
        sizes = engine.index.layout.cluster_sizes
        assert (sizes <= rows).all()
        assert rows == engine.index.layout.matrix.shape[0]


class TestCiphertextOpacity:
    def test_ciphertext_reveals_no_zero_block_structure(self, engine):
        """q-tilde is almost all zeros; the ciphertext must not be."""
        token = engine.mint_token(np.random.default_rng(0))
        keys, _ = token.consume()
        index = engine.index
        q_emb = quantize(index.embeddings[0] * index.quantization_gain, index.config.quantization())
        q_tilde = build_query_vector(q_emb, 0, index.layout.num_clusters)
        ct = index.ranking_scheme.encrypt(
            keys["ranking"], q_tilde, np.random.default_rng(1)
        )
        # The plaintext is >90% zeros; ciphertext words should look
        # uniform -- check no excess of small words where zeros sit.
        dim = index.layout.dim
        zero_region = np.asarray(ct.c[dim:], dtype=np.float64)
        payload_region = np.asarray(ct.c[:dim], dtype=np.float64)
        q = 2.0**64
        assert abs(zero_region.mean() / q - 0.5) < 0.05
        assert abs(payload_region.mean() / q - 0.5) < 0.2

    def test_same_query_twice_yields_different_bytes(self, engine):
        """Fresh keys per token: identical queries are unlinkable."""
        index = engine.index
        q_emb = quantize(index.embeddings[5] * index.quantization_gain, index.config.quantization())
        q_tilde = build_query_vector(q_emb, 2, index.layout.num_clusters)
        cts = []
        for seed in (0, 1):
            keys, _ = engine.mint_token(np.random.default_rng(seed)).consume()
            cts.append(
                index.ranking_scheme.encrypt(
                    keys["ranking"], q_tilde, np.random.default_rng(seed + 10)
                ).c
            )
        assert not np.array_equal(cts[0], cts[1])

    def test_ciphertext_bytes_pass_uniformity_test(self, engine):
        """Chi-squared test: ciphertext bytes are consistent with a
        uniform distribution (a sharper check than the mean)."""
        from scipy import stats

        index = engine.index
        words = []
        for seed in range(4):
            keys, _ = engine.mint_token(np.random.default_rng(seed)).consume()
            q_emb = quantize(
                index.embeddings[seed] * index.quantization_gain,
                index.config.quantization(),
            )
            q_tilde = build_query_vector(q_emb, seed, index.layout.num_clusters)
            ct = index.ranking_scheme.encrypt(
                keys["ranking"], q_tilde, np.random.default_rng(seed + 50)
            )
            words.append(np.asarray(ct.c, dtype=np.uint64))
        raw = np.concatenate(words).view(np.uint8)
        counts = np.bincount(raw, minlength=256)
        _, p_value = stats.chisquare(counts)
        assert p_value > 0.001  # no gross deviation from uniform

    def test_pir_query_hides_batch_index(self, engine):
        """Two PIR queries for different batches have identical shape."""
        keys, _ = engine.mint_token(np.random.default_rng(2)).consume()
        client = engine.new_client(np.random.default_rng(3))
        q_first = client.url_client.build_query(
            keys["url"], 0, np.random.default_rng(4)
        )
        keys2, _ = engine.mint_token(np.random.default_rng(5)).consume()
        last = engine.index.url_db.num_records - 1
        q_last = client.url_client.build_query(
            keys2["url"], last, np.random.default_rng(6)
        )
        assert q_first.wire_bytes() == q_last.wire_bytes()
        assert len(q_first.ciphertext.c) == len(q_last.ciphertext.c)


class TestServerScansEverything:
    def test_ranking_touches_every_cluster(self, engine):
        """Cost is identical whichever cluster the client probes --
        the linear scan the privacy argument requires (SS3.1)."""
        from repro.core.ranking import RankingClient, RankingService

        index = engine.index
        service = RankingService(index.ranking_scheme, index.layout.matrix)
        client = RankingClient(
            index.ranking_scheme,
            dim=index.layout.dim,
            num_clusters=index.layout.num_clusters,
        )
        costs = []
        for cluster in (0, index.layout.num_clusters - 1):
            keys, _ = engine.mint_token(
                np.random.default_rng(cluster)
            ).consume()
            q_emb = quantize(
                index.embeddings[0], index.config.quantization()
            )
            before = service.ledger.total_ops()
            service.answer(
                client.build_query(
                    keys["ranking"], q_emb, cluster, np.random.default_rng(7)
                )
            )
            costs.append(service.ledger.total_ops() - before)
        assert costs[0] == costs[1]
        assert costs[0] == 2 * index.layout.matrix.size
