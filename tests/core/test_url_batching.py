"""Tests for batched URL-service answers."""

import numpy as np
import pytest

from repro.pir.simplepir import PirQuery


class TestUrlAnswerBatch:
    @pytest.fixture(scope="class")
    def queries(self, engine):
        index = engine.index
        rng = np.random.default_rng(0)
        keys = index.url_scheme.gen_keys(rng)
        queries = []
        for i in range(4):
            sel = index.url_db.selection_vector(i % index.url_db.num_records)
            queries.append(
                PirQuery(ciphertext=index.url_scheme.encrypt(keys, sel, rng))
            )
        return queries

    def test_matches_individual_answers(self, engine, queries):
        service = engine.url_service
        individual = [service.answer(q).values for q in queries]
        batched = [a.values for a in service.answer_batch(queries)]
        for got, want in zip(batched, individual):
            assert np.array_equal(got, want)

    def test_empty_batch(self, engine):
        assert engine.url_service.answer_batch([]) == []

    def test_ledger_scales_with_batch(self, engine, queries):
        service = engine.url_service
        before = service.ledger.total_ops("url")
        service.answer_batch(queries)
        added = service.ledger.total_ops("url") - before
        per_query = engine.index.url_scheme.inner.apply_word_ops(
            engine.index.url_db.num_rows
        )
        assert added == per_query * len(queries)
