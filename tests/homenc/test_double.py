"""Tests for the double-layer compression scheme."""

import numpy as np
import pytest

from repro.homenc import DoubleLheParams, DoubleLheScheme
from repro.lwe import LweParams
from repro.lwe.sampling import seeded_rng


def toy_params(q_bits=64, p=2**12, m=48, n_inner=32, n_outer=64):
    inner = LweParams(n=n_inner, q_bits=q_bits, p=p, sigma=6.4, m=m)
    return DoubleLheParams(
        inner=inner, outer_n=n_outer, outer_prime_bits=30, outer_num_primes=3
    )


@pytest.fixture(scope="module")
def scheme():
    return DoubleLheScheme(toy_params(), a_seed=b"D" * 32)


@pytest.fixture(scope="module")
def keyed(scheme):
    rng = seeded_rng(42)
    keys = scheme.gen_keys(rng)
    enc_key = scheme.encrypt_key(keys, rng)
    return keys, enc_key


class TestHintOutsourcing:
    def test_hint_product_matches_direct_computation(self, scheme, keyed):
        keys, enc_key = keyed
        rng = seeded_rng(1)
        matrix = rng.integers(-8, 8, size=(20, scheme.params.inner.m))
        prep = scheme.preprocess(matrix)
        compressed = scheme.evaluate_hint(enc_key, prep)
        got = scheme.decrypt_hint_product(keys, compressed)
        t = scheme.params.switch_modulus
        want = (
            prep.switched_hint.astype(object) @ keys.inner.signed().astype(object)
        ) % t
        assert np.array_equal(got.astype(object), want)

    def test_multi_chunk_hint(self, scheme, keyed):
        keys, enc_key = keyed
        rng = seeded_rng(2)
        rows = scheme.params.outer_n * 2 + 5  # forces three chunks
        matrix = rng.integers(-8, 8, size=(rows, scheme.params.inner.m))
        prep = scheme.preprocess(matrix)
        compressed = scheme.evaluate_hint(enc_key, prep)
        assert len(compressed.chunks) == 3
        got = scheme.decrypt_hint_product(keys, compressed)
        assert got.shape == (rows,)


class TestEndToEnd:
    def test_full_pipeline_matches_plaintext(self, scheme, keyed):
        keys, enc_key = keyed
        rng = seeded_rng(3)
        msg = rng.integers(-8, 8, scheme.params.inner.m)
        matrix = rng.integers(-8, 8, size=(30, scheme.params.inner.m))
        prep = scheme.preprocess(matrix)
        hint_product = scheme.decrypt_hint_product(
            keys, scheme.evaluate_hint(enc_key, prep)
        )
        ct = scheme.encrypt(keys, msg, rng)
        answer = scheme.apply(matrix, ct)
        got = scheme.decrypt_centered(keys, answer, hint_product)
        assert np.array_equal(got, matrix @ msg)

    def test_pipeline_with_32_bit_inner(self):
        scheme32 = DoubleLheScheme(
            toy_params(q_bits=32, p=2**8, m=40), a_seed=b"E" * 32
        )
        rng = seeded_rng(4)
        keys = scheme32.gen_keys(rng)
        enc_key = scheme32.encrypt_key(keys, rng)
        msg = rng.integers(0, 2, scheme32.params.inner.m)
        matrix = rng.integers(0, 8, size=(16, scheme32.params.inner.m))
        prep = scheme32.preprocess(matrix)
        hint_product = scheme32.decrypt_hint_product(
            keys, scheme32.evaluate_hint(enc_key, prep)
        )
        ct = scheme32.encrypt(keys, msg, rng)
        got = scheme32.decrypt(keys, scheme32.apply(matrix, ct), hint_product)
        assert np.array_equal(got, (matrix @ msg) % scheme32.params.inner.p)

    def test_boundary_messages(self, scheme, keyed):
        keys, enc_key = keyed
        rng = seeded_rng(5)
        p = scheme.params.inner.p
        # Top-of-range plaintexts wrap through the negative half of T.
        msg = np.full(scheme.params.inner.m, p - 1)
        eye = np.eye(scheme.params.inner.m, dtype=np.int64)
        prep = scheme.preprocess(eye)
        hint_product = scheme.decrypt_hint_product(
            keys, scheme.evaluate_hint(enc_key, prep)
        )
        ct = scheme.encrypt(keys, msg, rng)
        got = scheme.decrypt(keys, scheme.apply(eye, ct), hint_product)
        assert np.array_equal(got, msg)


class TestCompression:
    def test_compressed_hint_is_much_smaller_than_hint(self, scheme):
        rows = 500
        raw = scheme.inner.hint_bytes(rows)
        compressed = scheme.compressed_hint_bytes(rows)
        assert compressed < raw / 2

    def test_key_upload_accounting(self, scheme, keyed):
        _, enc_key = keyed
        assert enc_key.wire_bytes() == scheme.key_upload_bytes()


class TestValidation:
    def test_even_switch_modulus_rejected(self):
        inner = LweParams(n=16, q_bits=32, p=16, sigma=6.4, m=8)
        with pytest.raises(ValueError):
            DoubleLheParams(inner=inner, switch_modulus=1 << 20)

    def test_oversized_switch_modulus_rejected(self):
        inner = LweParams(n=16, q_bits=32, p=16, sigma=6.4, m=8)
        with pytest.raises(ValueError):
            DoubleLheParams(inner=inner, switch_modulus=(1 << 32) + 1)
