"""Tests for the degree-two scheme and encrypted-corpus search."""

import numpy as np
import pytest

from repro.homenc.degree2 import (
    Degree2Params,
    Degree2Scheme,
)


@pytest.fixture(scope="module")
def scheme():
    return Degree2Scheme(Degree2Params(n=32))


@pytest.fixture(scope="module")
def secret(scheme):
    return scheme.gen_secret(np.random.default_rng(0))


class TestDegree2:
    def test_encrypted_inner_product(self, scheme, secret):
        rng = np.random.default_rng(1)
        x = rng.integers(-8, 8, 12)
        y = rng.integers(-8, 8, 12)
        cx = scheme.encrypt_vector(secret, x, rng)
        cy = scheme.encrypt_vector(secret, y, rng)
        answer = Degree2Scheme.inner_product(cx, cy)
        assert scheme.decrypt_score(secret, answer) == int(x @ y)

    def test_zero_and_negative_results(self, scheme, secret):
        rng = np.random.default_rng(2)
        x = np.array([1, 0, -1, 2])
        for y, want in [(np.array([0, 5, 0, 0]), 0), (np.array([-3, 0, 0, 0]), -3)]:
            cx = scheme.encrypt_vector(secret, x, rng)
            cy = scheme.encrypt_vector(secret, y, rng)
            got = scheme.decrypt_score(
                secret, Degree2Scheme.inner_product(cx, cy)
            )
            assert got == want

    def test_answers_add_homomorphically(self, scheme, secret):
        rng = np.random.default_rng(3)
        x1, y1 = np.array([2, 3]), np.array([4, 5])
        x2, y2 = np.array([1, 1]), np.array([6, 7])
        a1 = Degree2Scheme.inner_product(
            scheme.encrypt_vector(secret, x1, rng),
            scheme.encrypt_vector(secret, y1, rng),
        )
        a2 = Degree2Scheme.inner_product(
            scheme.encrypt_vector(secret, x2, rng),
            scheme.encrypt_vector(secret, y2, rng),
        )
        combined = Degree2Scheme.add_answers(a1, a2)
        assert scheme.decrypt_score(secret, combined) == int(
            x1 @ y1 + x2 @ y2
        )

    def test_dimension_mismatch_rejected(self, scheme, secret):
        rng = np.random.default_rng(4)
        cx = scheme.encrypt_vector(secret, np.array([1, 2]), rng)
        cy = scheme.encrypt_vector(secret, np.array([1, 2, 3]), rng)
        with pytest.raises(ValueError):
            Degree2Scheme.inner_product(cx, cy)

    def test_answer_is_heavy(self, scheme, secret):
        """The n x n response is the cost SS9 warns about."""
        rng = np.random.default_rng(5)
        cx = scheme.encrypt_vector(secret, np.array([1]), rng)
        answer = Degree2Scheme.inner_product(cx, cx)
        assert answer.wire_bytes() > scheme.params.n**2 * 16

    def test_wrong_key_decrypts_garbage(self, scheme, secret):
        rng = np.random.default_rng(6)
        other = scheme.gen_secret(np.random.default_rng(99))
        x = np.array([4, 4, 4, 4])
        cx = scheme.encrypt_vector(secret, x, rng)
        answer = Degree2Scheme.inner_product(cx, cx)
        right = scheme.decrypt_score(secret, answer)
        wrong = scheme.decrypt_score(other, answer)
        assert right == int(x @ x)
        assert wrong != right


class TestEncryptedCorpusSearch:
    @pytest.fixture(scope="class")
    def deployment(self):
        from repro.core.encrypted_corpus import EncryptedCorpusClient

        rng = np.random.default_rng(7)
        raw = rng.standard_normal((40, 8))
        embeddings = raw / np.linalg.norm(raw, axis=1, keepdims=True)
        metadata = [f"https://private.example/{i}".encode() for i in range(40)]
        client, server = EncryptedCorpusClient.build(
            embeddings,
            metadata,
            target_cluster_size=10,
            rng=rng,
            params=Degree2Params(n=32),
        )
        return client, server, embeddings, metadata

    def test_own_embedding_ranks_first(self, deployment):
        client, server, embeddings, metadata = deployment
        rng = np.random.default_rng(8)
        for doc in (0, 17, 33):
            results = client.search(server, embeddings[doc], rng, k=3)
            assert results[0][0] == doc
            assert results[0][2] == metadata[doc]

    def test_server_state_is_opaque(self, deployment):
        client, server, _, metadata = deployment
        # Sealed metadata never equals the plaintext...
        assert all(
            sealed != plain
            for sealed, plain in zip(server.sealed_metadata, metadata)
        )
        # ...and ciphertext phases look uniform mod 2^128.
        b_vals = [int(server.encrypted_docs[0].b[i]) for i in range(4)]
        assert all(v > 2**100 or v < 2**128 for v in b_vals)
        assert len(set(b_vals)) == len(b_vals)

    def test_metadata_round_trip(self):
        from repro.core.encrypted_corpus import open_metadata, seal_metadata

        key = b"k" * 32
        sealed = seal_metadata(key, 3, b"hello world")
        assert open_metadata(key, 3, sealed) == b"hello world"
        assert open_metadata(key, 4, sealed) != b"hello world"

    def test_build_validation(self):
        from repro.core.encrypted_corpus import EncryptedCorpusClient

        with pytest.raises(ValueError):
            EncryptedCorpusClient.build(
                np.zeros((3, 4)), [b"x"], 2, np.random.default_rng(0)
            )
