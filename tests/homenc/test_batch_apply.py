"""Batched double-layer evaluation: bit-identity and key isolation.

Two contracts:

* ``apply_batch`` (inner layer, delegated through the double scheme)
  returns per-column results bit-identical to sequential ``apply``;
* ``evaluate_hint_batch`` shares only the client-independent work (the
  plaintext hint polynomials and their NTTs) -- every client's
  pointwise products run against that client's own encrypted key, so
  each returned hint equals ``evaluate_hint`` for that client exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.homenc import DoubleLheParams, DoubleLheScheme
from repro.lwe import LweParams
from repro.lwe.sampling import seeded_rng


@pytest.fixture(scope="module")
def double_setup():
    inner = LweParams(n=24, q_bits=32, p=512, sigma=3.2, m=20)
    scheme = DoubleLheScheme(
        DoubleLheParams(inner=inner, outer_n=32, outer_num_primes=3),
        a_seed=b"D" * 32,
    )
    rng = seeded_rng(1)
    matrix = rng.integers(-4, 5, size=(70, 20))
    prep = scheme.preprocess(matrix)
    clients = []
    for c in range(3):
        keys = scheme.gen_keys(rng)
        enc_key = scheme.encrypt_key(keys, rng)
        cts = [
            scheme.encrypt(keys, rng.integers(-4, 5, 20), rng)
            for _ in range(2)
        ]
        clients.append((keys, enc_key, cts))
    return scheme, matrix, prep, clients


class TestDoubleApplyBatch:
    @pytest.mark.parametrize("batch", [1, 2, 5, 6])
    def test_bit_identical_to_apply(self, double_setup, batch):
        scheme, matrix, _, clients = double_setup
        cts = [ct for _, _, ccts in clients for ct in ccts][:batch]
        got = scheme.apply_batch(matrix, cts)
        for i, ct in enumerate(cts):
            assert np.array_equal(got[:, i], scheme.apply(matrix, ct))

    def test_plan_reuse_matches(self, double_setup):
        scheme, matrix, _, clients = double_setup
        cts = [ct for _, _, ccts in clients for ct in ccts]
        plan = scheme.batch_plan(matrix)
        assert np.array_equal(
            scheme.apply_batch(None, cts, plan=plan),
            scheme.apply_batch(matrix, cts),
        )


class TestEvaluateHintBatch:
    def test_bit_identical_per_client(self, double_setup):
        scheme, _, prep, clients = double_setup
        enc_keys = [enc_key for _, enc_key, _ in clients]
        batched = scheme.evaluate_hint_batch(enc_keys, prep)
        assert len(batched) == len(enc_keys)
        for enc_key, got in zip(enc_keys, batched):
            want = scheme.evaluate_hint(enc_key, prep)
            assert got.rows == want.rows
            assert len(got.chunks) == len(want.chunks)
            for ca, cb in zip(want.chunks, got.chunks):
                assert np.array_equal(ca.b, cb.b)
                assert np.array_equal(ca.a, cb.a)

    def test_single_client_batch(self, double_setup):
        scheme, _, prep, clients = double_setup
        _, enc_key, _ = clients[0]
        (got,) = scheme.evaluate_hint_batch([enc_key], prep)
        want = scheme.evaluate_hint(enc_key, prep)
        for ca, cb in zip(want.chunks, got.chunks):
            assert np.array_equal(ca.b, cb.b)
            assert np.array_equal(ca.a, cb.a)

    def test_empty_batch(self, double_setup):
        scheme, _, prep, _ = double_setup
        assert scheme.evaluate_hint_batch([], prep) == []

    def test_batched_hints_decrypt_correct_scores(self, double_setup):
        """End to end: token minted via the batch path still decrypts."""
        scheme, matrix, prep, clients = double_setup
        enc_keys = [enc_key for _, enc_key, _ in clients]
        batched = scheme.evaluate_hint_batch(enc_keys, prep)
        for (keys, _, cts), hint in zip(clients, batched):
            hint_product = scheme.decrypt_hint_product(keys, hint)
            got = scheme.decrypt_centered(
                keys, scheme.apply(matrix, cts[0]), hint_product
            )
            assert got.shape == (matrix.shape[0],)


@st.composite
def batch_pipeline_cases(draw):
    q_bits = draw(st.sampled_from([32, 64]))
    m = draw(st.integers(4, 16))
    rows = draw(st.integers(1, 30))
    batch = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**32 - 1))
    return q_bits, m, rows, batch, seed


@given(batch_pipeline_cases())
@settings(max_examples=10, deadline=None)
def test_batched_pipeline_total_correctness(case):
    """Random shapes: decrypting a batched Apply column recovers M v."""
    q_bits, m, rows, batch, seed = case
    inner = LweParams(n=24, q_bits=q_bits, p=256, sigma=3.2, m=m)
    scheme = DoubleLheScheme(
        DoubleLheParams(inner=inner, outer_n=32, outer_num_primes=3),
        a_seed=seed.to_bytes(4, "little") * 8,
    )
    rng = seeded_rng(seed)
    keys = scheme.gen_keys(rng)
    enc_key = scheme.encrypt_key(keys, rng)
    matrix = rng.integers(-4, 5, size=(rows, m))
    prep = scheme.preprocess(matrix)
    (hint,) = scheme.evaluate_hint_batch([enc_key], prep)
    hint_product = scheme.decrypt_hint_product(keys, hint)
    msgs = [rng.integers(-4, 5, m) for _ in range(batch)]
    cts = [scheme.encrypt(keys, msg, rng) for msg in msgs]
    answers = scheme.apply_batch(matrix, cts)
    for i, msg in enumerate(msgs):
        got = scheme.decrypt_centered(keys, answers[:, i], hint_product)
        want = matrix.astype(np.int64) @ msg.astype(np.int64)
        assert np.array_equal(got, want)
