"""Tests for query-token minting and single-use enforcement."""

import numpy as np
import pytest

from repro.homenc import DoubleLheParams, DoubleLheScheme, TokenFactory, TokenReuseError
from repro.homenc.token import make_client_keys, request_token
from repro.lwe import LweParams
from repro.lwe.sampling import seeded_rng


def make_service(q_bits, p, m, n_inner=32, seed=b"S" * 32):
    inner = LweParams(n=n_inner, q_bits=q_bits, p=p, sigma=6.4, m=m)
    return DoubleLheScheme(
        DoubleLheParams(
            inner=inner, outer_n=64, outer_prime_bits=30, outer_num_primes=3
        ),
        a_seed=seed,
    )


@pytest.fixture(scope="module")
def two_services():
    rng = seeded_rng(0)
    ranking = make_service(64, 2**12, 40, seed=b"R" * 32)
    url = make_service(32, 2**8, 24, seed=b"U" * 32)
    rank_matrix = rng.integers(-8, 8, size=(30, 40))
    url_matrix = rng.integers(0, 2**8, size=(20, 24))
    factory = TokenFactory()
    factory.register("ranking", ranking, ranking.preprocess(rank_matrix))
    factory.register("url", url, url.preprocess(url_matrix))
    schemes = {"ranking": ranking, "url": url}
    return schemes, factory, rank_matrix, url_matrix


class TestSharedKeys:
    def test_same_dimension_services_share_one_upload(self, two_services):
        schemes, _, _, _ = two_services
        keys, enc_keys, upload = make_client_keys(schemes, seeded_rng(1))
        assert enc_keys["ranking"] is enc_keys["url"]
        assert upload == schemes["ranking"].key_upload_bytes()
        s_rank = keys["ranking"].inner.signed()
        s_url = keys["url"].inner.signed()
        assert np.array_equal(s_rank, s_url)

    def test_different_dimensions_get_separate_uploads(self):
        a = make_service(64, 2**12, 16, n_inner=32, seed=b"a" * 32)
        b = make_service(64, 2**12, 16, n_inner=16, seed=b"b" * 32)
        _, enc_keys, upload = make_client_keys(
            {"a": a, "b": b}, seeded_rng(2)
        )
        assert enc_keys["a"] is not enc_keys["b"]
        assert upload == a.key_upload_bytes() + b.key_upload_bytes()


class TestTokenLifecycle:
    def test_token_supports_one_correct_query_per_service(self, two_services):
        schemes, factory, rank_matrix, url_matrix = two_services
        token = request_token(schemes, factory, seeded_rng(3))
        keys, hint_products = token.consume()
        rng = seeded_rng(4)

        msg = rng.integers(-8, 8, 40)
        ct = schemes["ranking"].encrypt(keys["ranking"], msg, rng)
        answer = schemes["ranking"].apply(rank_matrix, ct)
        got = schemes["ranking"].decrypt_centered(
            keys["ranking"], answer, hint_products["ranking"]
        )
        assert np.array_equal(got, rank_matrix @ msg)

        sel = np.zeros(24, dtype=int)
        sel[7] = 1
        ct = schemes["url"].encrypt(keys["url"], sel, rng)
        answer = schemes["url"].apply(url_matrix, ct)
        got = schemes["url"].decrypt(keys["url"], answer, hint_products["url"])
        assert np.array_equal(got, url_matrix[:, 7] % 2**8)

    def test_token_is_single_use(self, two_services):
        schemes, factory, _, _ = two_services
        token = request_token(schemes, factory, seeded_rng(5))
        token.consume()
        with pytest.raises(TokenReuseError):
            token.consume()

    def test_token_byte_accounting(self, two_services):
        schemes, factory, _, _ = two_services
        token = request_token(schemes, factory, seeded_rng(6))
        assert token.upload_bytes == schemes["ranking"].key_upload_bytes()
        assert token.download_bytes > 0

    def test_two_tokens_use_independent_keys(self, two_services):
        schemes, factory, _, _ = two_services
        t1 = request_token(schemes, factory, seeded_rng(7))
        t2 = request_token(schemes, factory, seeded_rng(8))
        s1 = t1.keys["ranking"].inner.signed()
        s2 = t2.keys["ranking"].inner.signed()
        assert not np.array_equal(s1, s2)


def assert_hints_equal(a, b):
    """Bit-identity of two CompressedHint payloads, chunk by chunk."""
    assert a.rows == b.rows
    assert len(a.chunks) == len(b.chunks)
    for ca, cb in zip(a.chunks, b.chunks):
        np.testing.assert_array_equal(ca.b, cb.b)
        np.testing.assert_array_equal(ca.a, cb.a)


class TestMintMany:
    def test_batch_is_bit_identical_to_sequential_mints(self, two_services):
        """The mint_many stacking only amortizes NTTs: payload i equals
        what a lone mint of client i's keys returns."""
        schemes, factory, _, _ = two_services
        enc_keys_list = [
            make_client_keys(schemes, seeded_rng(30 + i))[1]
            for i in range(3)
        ]
        batched = factory.mint_many(enc_keys_list)
        assert len(batched) == 3
        for enc_keys, payload in zip(enc_keys_list, batched):
            lone = factory.mint(enc_keys)
            for name in ("ranking", "url"):
                assert_hints_equal(payload.hints[name], lone.hints[name])

    def test_single_client_batch_matches_mint(self, two_services):
        schemes, factory, _, _ = two_services
        _, enc_keys, _ = make_client_keys(schemes, seeded_rng(40))
        (payload,) = factory.mint_many([enc_keys])
        lone = factory.mint(enc_keys)
        for name in ("ranking", "url"):
            assert_hints_equal(payload.hints[name], lone.hints[name])

    def test_empty_batch_mints_nothing(self, two_services):
        _, factory, _, _ = two_services
        assert factory.mint_many([]) == []

    def test_missing_service_keys_rejected(self, two_services):
        schemes, factory, _, _ = two_services
        good = make_client_keys(schemes, seeded_rng(41))[1]
        bad = make_client_keys(
            {"ranking": schemes["ranking"]}, seeded_rng(42)
        )[1]
        with pytest.raises(ValueError):
            factory.mint_many([good, bad])


class TestSingleUseUnderThreads:
    def test_exactly_one_thread_wins_consume(self, two_services):
        """The single-use check is a locked check-and-set: N racing
        consumers yield one success and N-1 TokenReuseErrors."""
        import threading

        schemes, factory, _, _ = two_services
        token = request_token(schemes, factory, seeded_rng(50))
        outcomes = []
        outcomes_lock = threading.Lock()
        barrier = threading.Barrier(8)

        def consume():
            barrier.wait()
            try:
                token.consume()
                result = "ok"
            except TokenReuseError:
                result = "reused"
            with outcomes_lock:
                outcomes.append(result)

        threads = [threading.Thread(target=consume) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count("ok") == 1
        assert outcomes.count("reused") == 7


class TestFactoryValidation:
    def test_duplicate_registration_rejected(self):
        svc = make_service(64, 2**12, 16)
        factory = TokenFactory()
        prep = svc.preprocess(np.zeros((4, 16), dtype=int))
        factory.register("x", svc, prep)
        with pytest.raises(ValueError):
            factory.register("x", svc, prep)

    def test_mint_requires_all_services(self, two_services):
        schemes, factory, _, _ = two_services
        _, enc_keys, _ = make_client_keys(
            {"ranking": schemes["ranking"]}, seeded_rng(9)
        )
        with pytest.raises(ValueError):
            factory.mint(enc_keys)
