"""Property-based tests: the double-layer pipeline over random shapes.

One strategy instance = one full Enc -> Preproc -> Apply -> compress
-> decrypt pipeline with randomized dimensions, moduli, messages, and
matrices.  The invariant is total: the recovered plaintext equals the
plaintext matrix-vector product, for every parameter combination the
scheme accepts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.homenc import DoubleLheParams, DoubleLheScheme
from repro.lwe import LweParams
from repro.lwe.sampling import seeded_rng


@st.composite
def pipeline_cases(draw):
    q_bits = draw(st.sampled_from([32, 64]))
    p_bits = draw(st.integers(6, 10 if q_bits == 32 else 14))
    m = draw(st.integers(4, 24))
    rows = draw(st.integers(1, 40))
    seed = draw(st.integers(0, 2**32 - 1))
    return q_bits, 1 << p_bits, m, rows, seed


@given(pipeline_cases())
@settings(max_examples=15, deadline=None)
def test_pipeline_total_correctness(case):
    q_bits, p, m, rows, seed = case
    inner = LweParams(n=24, q_bits=q_bits, p=p, sigma=3.2, m=m)
    scheme = DoubleLheScheme(
        DoubleLheParams(inner=inner, outer_n=32, outer_num_primes=3),
        a_seed=seed.to_bytes(4, "little") * 8,
    )
    rng = seeded_rng(seed)
    keys = scheme.gen_keys(rng)
    enc_key = scheme.encrypt_key(keys, rng)
    bound = 4
    matrix = rng.integers(-bound, bound + 1, size=(rows, m))
    msg = rng.integers(-bound, bound + 1, m)
    prep = scheme.preprocess(matrix)
    hint_product = scheme.decrypt_hint_product(
        keys, scheme.evaluate_hint(enc_key, prep)
    )
    ct = scheme.encrypt(keys, msg, rng)
    got = scheme.decrypt_centered(keys, scheme.apply(matrix, ct), hint_product)
    want = matrix @ msg
    # The product must stay inside the centered plaintext range.
    if np.abs(want).max() < p // 2:
        assert np.array_equal(got, want)


@given(st.integers(0, 2**32 - 1), st.integers(1, 5))
@settings(max_examples=10, deadline=None)
def test_one_key_many_matrices(seed, num_matrices):
    """One encrypted key serves any number of preprocessed matrices."""
    inner = LweParams(n=16, q_bits=64, p=2**10, sigma=3.2, m=8)
    scheme = DoubleLheScheme(
        DoubleLheParams(inner=inner, outer_n=32), a_seed=b"H" * 32
    )
    rng = seeded_rng(seed)
    keys = scheme.gen_keys(rng)
    enc_key = scheme.encrypt_key(keys, rng)
    msg = rng.integers(-3, 4, 8)
    ct = scheme.encrypt(keys, msg, rng)
    for _ in range(num_matrices):
        matrix = rng.integers(-3, 4, size=(6, 8))
        prep = scheme.preprocess(matrix)
        hint_product = scheme.decrypt_hint_product(
            keys, scheme.evaluate_hint(enc_key, prep)
        )
        got = scheme.decrypt_centered(
            keys, scheme.apply(matrix, ct), hint_product
        )
        assert np.array_equal(got, matrix @ msg)
