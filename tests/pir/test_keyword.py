"""Tests for keyword PIR."""

import numpy as np
import pytest

from repro.pir.keyword import KeywordPir, bucket_of, _frame, _unframe


class TestFraming:
    def test_round_trip(self):
        entries = [("alpha", b"1"), ("beta", b"\x00\xff"), ("c", b"")]
        assert _unframe(_frame(entries)) == dict(entries)

    def test_empty(self):
        assert _unframe(_frame([])) == {}

    def test_tolerates_zero_padding(self):
        blob = _frame([("k", b"v")]) + b"\x00" * 10
        assert _unframe(blob) == {"k": b"v"}


class TestBucketing:
    def test_stable(self):
        assert bucket_of("ph1234567890", 16) == bucket_of("ph1234567890", 16)

    def test_in_range(self):
        for key in ("a", "b", "some-longer-key"):
            assert 0 <= bucket_of(key, 7) < 7

    def test_spreads_keys(self):
        buckets = {bucket_of(f"key-{i}", 8) for i in range(100)}
        assert len(buckets) == 8


@pytest.fixture(scope="module")
def store():
    table = {f"ph{1000000000 + i}": f"doc-{i}".encode() for i in range(60)}
    return KeywordPir.build(table, a_seed=b"W" * 32), table


class TestKeywordPir:
    def test_hit_returns_value(self, store):
        pir, table = store
        rng = np.random.default_rng(0)
        for key in list(table)[:5]:
            assert pir.lookup_with_hint(key, rng) == table[key]

    def test_miss_returns_none(self, store):
        pir, _ = store
        assert pir.lookup_with_hint("ph9999999999", np.random.default_rng(1)) is None

    def test_compressed_mode_lookup(self, store):
        pir, table = store
        rng = np.random.default_rng(2)
        scheme = pir.scheme()
        keys = scheme.gen_keys(rng)
        enc_key = scheme.encrypt_key(keys, rng)
        hint_product = scheme.decrypt_hint_product(
            keys, scheme.evaluate_hint(enc_key, pir.server.prep)
        )
        key = list(table)[7]
        assert pir.lookup(key, keys, hint_product, rng) == table[key]

    def test_bucket_count_defaults_to_sqrt(self, store):
        pir, table = store
        assert pir.num_buckets == int(len(table) ** 0.5)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            KeywordPir.build({})
