"""Integration tests for the SimplePIR protocol."""

import numpy as np
import pytest

from repro.lwe.sampling import seeded_rng
from repro.pir import build_pir
from repro.pir.database import PackedDatabase


@pytest.fixture(scope="module")
def pir():
    records = [f"record-{i}".encode() * (i % 3 + 1) for i in range(40)]
    server, client = build_pir(records, a_seed=b"P" * 32)
    return server, client, records


class TestClassicMode:
    def test_retrieves_every_record(self, pir):
        server, client, records = pir
        rng = seeded_rng(0)
        keys = client.keygen(rng)
        hint = server.hint()
        for index in [0, 7, 39]:
            query = client.query(keys, index, rng)
            answer = server.answer(query)
            assert client.recover_classic(keys, answer, hint) == records[index]

    def test_query_size_is_index_independent(self, pir):
        server, client, _ = pir
        rng = seeded_rng(1)
        keys = client.keygen(rng)
        sizes = {client.query(keys, i, rng).wire_bytes() for i in (0, 5, 39)}
        assert len(sizes) == 1

    def test_answer_size_is_index_independent(self, pir):
        server, client, _ = pir
        rng = seeded_rng(2)
        keys = client.keygen(rng)
        sizes = {
            server.answer(client.query(keys, i, rng)).wire_bytes()
            for i in (0, 39)
        }
        assert len(sizes) == 1


class TestCompressedMode:
    def test_retrieval_via_hint_product(self, pir):
        server, client, records = pir
        rng = seeded_rng(3)
        keys = client.keygen(rng)
        enc_key = server.scheme.encrypt_key(keys, rng)
        compressed = server.scheme.evaluate_hint(enc_key, server.prep)
        hint_product = server.scheme.decrypt_hint_product(keys, compressed)
        query = client.query(keys, 13, rng)
        answer = server.answer(query)
        assert client.recover(keys, answer, hint_product) == records[13]

    def test_compressed_hint_smaller_than_raw(self, pir):
        server, _, _ = pir
        compressed = server.scheme.compressed_hint_bytes(server.db.num_rows)
        assert compressed < server.hint_bytes()


class TestValidation:
    def test_modulus_mismatch_rejected(self, pir):
        server, _, _ = pir
        other_db = PackedDatabase.from_records([b"x"] * 40, 16)
        from repro.pir.simplepir import SimplePirServer

        if other_db.p != server.scheme.params.inner.p:
            with pytest.raises(ValueError):
                SimplePirServer(other_db, server.scheme)

    def test_width_mismatch_rejected(self, pir):
        server, _, _ = pir
        small_db = PackedDatabase.from_records(
            [b"x"] * 3, server.scheme.params.inner.p
        )
        from repro.pir.simplepir import SimplePirServer

        with pytest.raises(ValueError):
            SimplePirServer(small_db, server.scheme)
