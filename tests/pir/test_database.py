"""Tests for PIR record packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pir.database import PackedDatabase


class TestPacking:
    def test_round_trip_simple(self):
        records = [b"hello", b"world!!", b""]
        db = PackedDatabase.from_records(records, 256)
        for i, rec in enumerate(records):
            assert db.record(i) == rec

    def test_variable_lengths_padded(self):
        records = [b"a" * 100, b"b"]
        db = PackedDatabase.from_records(records, 256)
        assert db.record(0) == b"a" * 100
        assert db.record(1) == b"b"

    @pytest.mark.parametrize("p", [4, 16, 256, 1024, 65536])
    def test_round_trip_across_moduli(self, p):
        records = [bytes(range(50)), b"\xff" * 33, b"\x00" * 10]
        db = PackedDatabase.from_records(records, p)
        assert db.matrix.max() < p
        for i, rec in enumerate(records):
            assert db.record(i) == rec

    def test_one_column_per_record(self):
        db = PackedDatabase.from_records([b"x"] * 7, 256)
        assert db.num_cols == 7

    def test_rejects_non_power_of_two_modulus(self):
        with pytest.raises(ValueError):
            PackedDatabase.from_records([b"x"], 100)

    def test_rejects_empty_database(self):
        with pytest.raises(ValueError):
            PackedDatabase.from_records([], 256)


class TestSelection:
    def test_selection_vector(self):
        db = PackedDatabase.from_records([b"a", b"b", b"c"], 256)
        sel = db.selection_vector(1)
        assert sel.tolist() == [0, 1, 0]
        assert np.array_equal(db.matrix @ sel, db.matrix[:, 1])

    def test_selection_bounds(self):
        db = PackedDatabase.from_records([b"a"], 256)
        with pytest.raises(IndexError):
            db.selection_vector(1)
        with pytest.raises(IndexError):
            db.selection_vector(-1)


class TestDecoding:
    def test_wrong_column_length_rejected(self):
        db = PackedDatabase.from_records([b"abc"], 256)
        with pytest.raises(ValueError):
            db.decode_column(np.zeros(db.num_rows + 1, dtype=np.int64))

    def test_corrupt_length_prefix_detected(self):
        db = PackedDatabase.from_records([b"abc"], 256)
        bad = db.matrix[:, 0].copy()
        bad[:4] = 255  # absurd length prefix
        with pytest.raises(ValueError):
            db.decode_column(bad)

    def test_storage_accounting(self):
        db = PackedDatabase.from_records([b"x" * 12] * 3, 256)
        assert db.storage_bytes() == db.num_rows * db.num_cols


@given(
    st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=8),
    st.sampled_from([16, 256, 4096]),
)
@settings(max_examples=50, deadline=None)
def test_pack_unpack_property(records, p):
    db = PackedDatabase.from_records(records, p)
    for i, rec in enumerate(records):
        assert db.record(i) == rec
