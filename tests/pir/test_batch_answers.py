"""Batched SimplePIR answers: bit-identity and full-protocol recovery."""

import numpy as np
import pytest

from repro.pir.simplepir import build_pir


@pytest.fixture(scope="module")
def pir_setup():
    records = [bytes([i] * 16) for i in range(30)]
    server, client = build_pir(records, a_seed=b"P" * 32)
    rng = np.random.default_rng(0)
    clients = []
    for c in range(5):
        keys = client.keygen(np.random.default_rng(100 + c))
        query = client.query(keys, c * 3, np.random.default_rng(200 + c))
        clients.append((keys, c * 3, query))
    return records, server, client, clients


class TestPirAnswerBatch:
    @pytest.mark.parametrize("batch", [1, 2, 5])
    def test_bit_identical_to_answer(self, pir_setup, batch):
        _, server, _, clients = pir_setup
        queries = [q for _, _, q in clients[:batch]]
        got = server.answer_batch(queries)
        assert len(got) == batch
        for query, answer in zip(queries, got):
            want = server.answer(query)
            assert np.array_equal(answer.values, want.values)
            assert answer.bytes_per_element == want.bytes_per_element

    def test_empty_batch(self, pir_setup):
        _, server, _, _ = pir_setup
        assert server.answer_batch([]) == []

    def test_plan_is_cached_across_calls(self, pir_setup):
        _, server, _, clients = pir_setup
        server.answer_batch([clients[0][2]])
        plan = server._plan
        assert plan is not None
        server.answer_batch([clients[1][2]])
        assert server._plan is plan

    def test_batched_answers_recover_records(self, pir_setup):
        """Full protocol: every batched answer decrypts to its record."""
        records, server, client, clients = pir_setup
        queries = [q for _, _, q in clients]
        answers = server.answer_batch(queries)
        for (keys, index, _), answer in zip(clients, answers):
            enc_key = server.scheme.encrypt_key(
                keys, np.random.default_rng(index)
            )
            hint = server.scheme.evaluate_hint(enc_key, server.prep)
            hint_product = server.scheme.decrypt_hint_product(keys, hint)
            assert client.recover(keys, answer, hint_product) == records[index]
