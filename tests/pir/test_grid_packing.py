"""Tests for the grid (multi-record-per-column) PIR layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.homenc.double import DoubleLheParams, DoubleLheScheme
from repro.lwe.params import LweParams
from repro.lwe.sampling import seeded_rng
from repro.pir.database import PackedDatabase


class TestGridLayout:
    def test_round_trip_every_record(self):
        records = [f"record-{i}".encode() * (i % 3 + 1) for i in range(17)]
        db = PackedDatabase.from_records_grid(records, 256, records_per_column=4)
        for i, rec in enumerate(records):
            col = db.column_of(i)
            got = db.decode_grid_column(db.matrix[:, col], col)
            assert got[i % 4] == rec

    def test_column_count(self):
        db = PackedDatabase.from_records_grid([b"x"] * 10, 256, 3)
        assert db.num_cols == 4  # ceil(10 / 3)
        assert db.num_records == 10

    def test_last_column_partial(self):
        records = [b"a", b"b", b"c", b"d", b"e"]
        db = PackedDatabase.from_records_grid(records, 256, 2)
        last = db.decode_grid_column(db.matrix[:, 2], 2)
        assert last == [b"e"]

    def test_grid_changes_aspect_ratio(self):
        records = [b"data" * 10] * 40
        tall = PackedDatabase.from_records_grid(records, 256, 8)
        wide = PackedDatabase.from_records(records, 256)
        assert tall.aspect_ratio() < wide.aspect_ratio()

    def test_validation(self):
        with pytest.raises(ValueError):
            PackedDatabase.from_records_grid([b"x"], 256, 0)
        with pytest.raises(ValueError):
            PackedDatabase.from_records_grid([], 256, 2)
        with pytest.raises(ValueError):
            PackedDatabase.from_records_grid([b"x"], 100, 2)


class TestGridThroughPir:
    def test_private_grid_retrieval(self):
        """A PIR fetch of one grid column yields all its records --
        the amortization behind SimplePIR's balanced layouts."""
        records = [f"url-{i}".encode() for i in range(12)]
        db = PackedDatabase.from_records_grid(records, 256, 3)
        inner = LweParams(n=64, q_bits=32, p=256, sigma=6.4, m=db.num_cols)
        scheme = DoubleLheScheme(
            DoubleLheParams(inner=inner, outer_n=64), a_seed=b"G" * 32
        )
        prep = scheme.preprocess(db.matrix)
        rng = seeded_rng(0)
        keys = scheme.gen_keys(rng)
        enc_key = scheme.encrypt_key(keys, rng)
        hint_product = scheme.decrypt_hint_product(
            keys, scheme.evaluate_hint(enc_key, prep)
        )
        target = 7
        col = db.column_of(target)
        sel = np.zeros(db.num_cols, dtype=np.int64)
        sel[col] = 1
        ct = scheme.encrypt(keys, sel, rng)
        digits = scheme.decrypt(keys, scheme.apply(db.matrix, ct), hint_product)
        got = db.decode_grid_column(digits, col)
        assert got == records[col * 3 : col * 3 + 3]


@given(
    st.lists(st.binary(min_size=0, max_size=30), min_size=1, max_size=20),
    st.integers(1, 6),
)
@settings(max_examples=40, deadline=None)
def test_grid_round_trip_property(records, rpc):
    db = PackedDatabase.from_records_grid(records, 256, rpc)
    for i, rec in enumerate(records):
        col = db.column_of(i)
        assert db.decode_grid_column(db.matrix[:, col], col)[i % rpc] == rec
