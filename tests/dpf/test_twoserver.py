"""Tests for the two-server (non-colluding) deployment of SS9."""

import numpy as np
import pytest

from repro.dpf import TwoServerPir, two_server_query_bytes
from repro.dpf.twoserver import TwoServerRankingService, two_server_rank
from repro.dpf.dpf import gen_keys


class TestTwoServerRanking:
    def test_matches_plaintext_cluster_scores(self):
        rng = np.random.default_rng(0)
        dim, clusters, rows = 6, 9, 25
        matrix = rng.integers(-8, 8, size=(rows, dim * clusters))
        q = rng.integers(-8, 8, dim)
        for cluster in (0, 4, 8):
            scores, _ = two_server_rank(matrix, dim, q, cluster, rng)
            want = matrix[:, cluster * dim : (cluster + 1) * dim] @ q
            assert np.array_equal(scores, want)

    def test_matches_single_server_private_protocol(self, engine):
        """The two deployments rank identically on the same index."""
        index = engine.index
        rng = np.random.default_rng(1)
        from repro.embeddings.quantize import quantize

        q = quantize(index.embeddings[11] * index.quantization_gain, index.config.quantization())
        cluster = 3
        scores, _ = two_server_rank(
            index.layout.matrix, index.layout.dim, q, cluster, rng
        )
        dim = index.layout.dim
        block = index.layout.matrix[:, cluster * dim : (cluster + 1) * dim]
        assert np.array_equal(scores, block @ q)

    def test_single_answer_share_is_uninformative(self):
        rng = np.random.default_rng(2)
        matrix = rng.integers(-8, 8, size=(40, 12))
        service = TwoServerRankingService(matrix, dim=3)
        q = np.array([1, 2, 3])
        k0, _ = gen_keys(1, q, 4, rng)
        share = service.answer(k0).share
        # One share is a pseudorandom masking of the scores: it should
        # look uniform over Z_{2^64} and not equal the true scores.
        true = matrix[:, 3:6] @ q
        assert not np.array_equal(share.astype(np.int64), true)
        normalized = share.astype(np.float64) / 2.0**64
        assert 0.2 < normalized.mean() < 0.8
        assert normalized.std() > 0.1

    def test_width_validation(self):
        with pytest.raises(ValueError):
            TwoServerRankingService(np.zeros((2, 10)), dim=3)


class TestTwoServerPir:
    def test_retrieves_every_record(self):
        records = [b"alpha", b"bravo-bravo", b"", b"\x00\xff"]
        pir = TwoServerPir(records)
        rng = np.random.default_rng(3)
        for i, rec in enumerate(records):
            got, _ = pir.retrieve(i, rng)
            assert got == rec

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError):
            TwoServerPir([])

    def test_query_size_independent_of_index(self):
        pir = TwoServerPir([b"x" * 10] * 32)
        rng = np.random.default_rng(4)
        _, up_first = pir.retrieve(0, rng)
        _, up_last = pir.retrieve(31, rng)
        assert up_first == up_last


class TestCommunicationEstimate:
    def test_c4_scale_is_about_one_mib(self):
        """SS9: ~1 MiB per query instead of Tiptoe's 56.9 MiB."""
        est = two_server_query_bytes(
            num_clusters=8736,
            dim=192,
            cluster_size=50_000,
            num_batches=496_364,
            batch_bytes=40 * 1024,
        )
        assert 0.5 * 2**20 < est["total"] < 1.5 * 2**20

    def test_orders_of_magnitude_below_single_server(self):
        from repro.evalx.costmodel import TiptoeCostModel

        single = TiptoeCostModel().total_bytes(364_000_000)
        two = two_server_query_bytes(8736, 192, 50_000, 496_364, 40 * 1024)
        assert single / two["total"] > 40
