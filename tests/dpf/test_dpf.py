"""Tests for the distributed point function."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dpf import eval_all, eval_point, gen_keys
from repro.dpf import prg


class TestPrg:
    def test_expand_is_deterministic(self):
        seed = b"\x01" * prg.SEED_BYTES
        assert prg.expand(seed) == prg.expand(seed)

    def test_expand_children_differ(self):
        left, _, right, _ = prg.expand(b"\x02" * prg.SEED_BYTES)
        assert left != right

    def test_expand_rejects_bad_seed_length(self):
        with pytest.raises(ValueError):
            prg.expand(b"short")

    def test_convert_length_and_determinism(self):
        seed = b"\x03" * prg.SEED_BYTES
        out = prg.convert(seed, 20)
        assert out.shape == (20,)
        assert np.array_equal(out, prg.convert(seed, 20))
        assert not np.array_equal(out[:8], prg.convert(b"\x04" * 16, 8))

    def test_xor_bytes(self):
        assert prg.xor_bytes(b"\xff\x00", b"\x0f\x0f") == b"\xf0\x0f"


class TestDpfCorrectness:
    def test_point_function_over_full_domain(self):
        rng = np.random.default_rng(0)
        beta = np.array([3, -5, 7])
        k0, k1 = gen_keys(5, beta, 12, rng)
        for x in range(12):
            total = (
                eval_point(k0, x, 3) + eval_point(k1, x, 3)
            ).astype(np.int64)
            want = beta if x == 5 else np.zeros(3, dtype=np.int64)
            assert np.array_equal(total, want)

    def test_eval_all_matches_eval_point(self):
        rng = np.random.default_rng(1)
        beta = np.array([42])
        k0, k1 = gen_keys(9, beta, 16, rng)
        full = eval_all(k0, 16, 1)
        for x in range(16):
            assert np.array_equal(full[x], eval_point(k0, x, 1))

    def test_non_power_of_two_domain(self):
        rng = np.random.default_rng(2)
        k0, k1 = gen_keys(6, np.array([1]), 7, rng)
        total = (eval_all(k0, 7, 1) + eval_all(k1, 7, 1)).astype(np.int64)
        assert total.reshape(-1).tolist() == [0] * 6 + [1]

    def test_domain_of_one(self):
        rng = np.random.default_rng(3)
        k0, k1 = gen_keys(0, np.array([5]), 1, rng)
        total = (eval_point(k0, 0, 1) + eval_point(k1, 0, 1)).astype(np.int64)
        assert total[0] == 5

    def test_alpha_out_of_range_rejected(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            gen_keys(4, np.array([1]), 4, rng)

    @given(
        st.integers(0, 63),
        st.integers(2, 64),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_point_function_property(self, alpha, domain, seed):
        alpha = alpha % domain
        rng = np.random.default_rng(seed)
        beta = rng.integers(-100, 100, size=4)
        k0, k1 = gen_keys(alpha, beta, domain, rng)
        total = (
            eval_all(k0, domain, 4) + eval_all(k1, domain, 4)
        ).astype(np.int64)
        assert np.array_equal(total[alpha], beta)
        mask = np.arange(domain) != alpha
        assert not total[mask].any()


class TestDpfSecurity:
    """Each key alone must reveal nothing about (alpha, beta)."""

    def test_single_key_shares_look_uniform(self):
        rng = np.random.default_rng(5)
        k0, _ = gen_keys(3, np.array([1000]), 64, rng)
        shares = eval_all(k0, 64, 1).astype(np.float64) / 2.0**64
        # No leaf should stand out; crude uniformity checks.
        assert 0.3 < shares.mean() < 0.7
        assert shares.std() > 0.15

    def test_share_at_alpha_not_special(self):
        rng = np.random.default_rng(6)
        k0, _ = gen_keys(10, np.array([7]), 32, rng)
        shares = eval_all(k0, 32, 1).reshape(-1)
        ranks = np.argsort(shares)
        assert ranks[0] != 10 or ranks[-1] != 10  # not an extreme outlier

    def test_key_size_is_logarithmic(self):
        rng = np.random.default_rng(7)
        small, _ = gen_keys(0, np.array([1]), 2**4, rng)
        large, _ = gen_keys(0, np.array([1]), 2**12, rng)
        assert large.wire_bytes() - small.wire_bytes() == 8 * 17
