"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them
executing as the library evolves.  Each test loads the script and
calls its ``main()`` (output is captured by pytest).
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, monkeypatch, capsys):
    if path.stem == "deployment_planner":
        monkeypatch.setattr(sys, "argv", [str(path), "1000000"])
    namespace = runpy.run_path(str(path))
    namespace["main"]()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"


def test_all_examples_discovered():
    assert len(EXAMPLES) >= 7
