"""The lock-discipline checker against its corpus, plus the seeded
unguarded-write injection from the PR's acceptance criteria."""

from collections import Counter
from pathlib import Path

from repro.analysis.checkers import build_program_checkers
from repro.analysis.checkers.locks import find_cycles, lock_order_edges
from repro.analysis.ir import CallGraph, Program
from repro.analysis.runner import analyze_paths

CORPUS = Path(__file__).parent / "corpus"
SRC = Path(__file__).resolve().parents[2] / "src"


def lock_findings(*paths):
    report = analyze_paths(
        list(paths), [], build_program_checkers({
            "lock-guarded-attr",
            "lock-order-cycle",
            "lock-blocking-call",
            "lock-requires",
            "lock-bad-annotation",
        })
    )
    return report.findings


class TestSeededInjection:
    def test_unguarded_write_produces_exactly_one_finding(self):
        """Acceptance: the seeded unguarded write is the only finding."""
        findings = lock_findings(CORPUS / "bad_locks.py")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "lock-guarded-attr"
        assert "_count" in finding.message
        assert "UnguardedCounter._lock" in finding.message
        assert "self._count += 1" in (finding.snippet or "")


class TestLockCorpus:
    def test_both_order_cycles_are_found(self):
        rules = Counter(
            f.rule for f in lock_findings(CORPUS / "bad_lock_order.py")
        )
        # one direct inversion, one through a callee's acquisition
        assert rules == {"lock-order-cycle": 2}

    def test_blocking_requires_and_annotation_rules(self):
        rules = Counter(
            f.rule for f in lock_findings(CORPUS / "bad_lock_misc.py")
        )
        assert rules == {
            "lock-blocking-call": 1,
            "lock-requires": 1,
            "lock-bad-annotation": 1,
        }

    def test_good_file_is_clean(self):
        assert not lock_findings(CORPUS / "good_locks.py")


class TestLockOrderGraph:
    def test_find_cycles_flags_inversion(self):
        edges = {("A", "B"): ("f.py", 1), ("B", "A"): ("f.py", 2)}
        cycles = find_cycles(edges)
        assert len(cycles) == 1

    def test_find_cycles_flags_self_loop(self):
        edges = {("A", "A"): ("f.py", 1)}
        assert len(find_cycles(edges)) == 1

    def test_acyclic_graph_has_no_cycles(self):
        edges = {
            ("A", "B"): ("f.py", 1),
            ("B", "C"): ("f.py", 2),
            ("A", "C"): ("f.py", 3),
        }
        assert find_cycles(edges) == []

    def test_repo_lock_order_graph_is_cycle_free(self):
        """Acceptance: the shipped code's static lock-order graph."""
        program = Program.load(sorted((SRC / "repro").rglob("*.py")))
        graph = CallGraph(program)
        edges = lock_order_edges(program, graph)
        assert find_cycles(edges) == [], edges
