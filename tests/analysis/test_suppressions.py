"""Suppression pragma parsing and coverage semantics."""

from pathlib import Path

from repro.analysis.checkers import build_checkers
from repro.analysis.runner import analyze_file
from repro.analysis.suppressions import find_cover, parse_suppressions

CORPUS = Path(__file__).parent / "corpus"
CHECKERS = build_checkers()


class TestParsing:
    def test_same_line_pragma(self):
        sups = parse_suppressions(
            "x = f()  # tiptoe-lint: disable=rule-a -- because reasons\n"
        )
        assert len(sups) == 1
        assert sups[0].rules == frozenset({"rule-a"})
        assert sups[0].reason == "because reasons"
        assert not sups[0].standalone

    def test_standalone_pragma_covers_next_line(self):
        sups = parse_suppressions(
            "# tiptoe-lint: disable=rule-a -- why\nx = f()\n"
        )
        assert sups[0].standalone
        assert find_cover(sups, "rule-a", 2) is not None
        assert find_cover(sups, "rule-a", 3) is None

    def test_missing_reason_is_inert(self):
        assert parse_suppressions("x = f()  # tiptoe-lint: disable=r\n") == []

    def test_rule_list_and_all(self):
        sups = parse_suppressions(
            "a()  # tiptoe-lint: disable=r1,r2 -- listed\n"
            "b()  # tiptoe-lint: disable=all -- blanket\n"
        )
        assert find_cover(sups, "r2", 1) is not None
        assert find_cover(sups, "r3", 1) is None
        assert find_cover(sups, "anything", 2) is not None

    def test_hash_inside_string_is_not_a_pragma(self):
        sups = parse_suppressions(
            's = "# tiptoe-lint: disable=r -- not a comment"\n'
        )
        assert sups == []

    def test_wrong_rule_does_not_cover(self):
        sups = parse_suppressions("a()  # tiptoe-lint: disable=r1 -- why\n")
        assert find_cover(sups, "r2", 1) is None


class TestEndToEnd:
    def test_justified_suppressions_silence_findings(self):
        findings = analyze_file(CORPUS / "suppressed_ok.py", CHECKERS)
        assert findings, "corpus file should still produce findings"
        assert all(f.suppressed for f in findings)
        assert all(f.suppress_reason for f in findings)

    def test_unjustified_pragma_does_not_suppress(self):
        findings = analyze_file(CORPUS / "unjustified.py", CHECKERS)
        active = [f for f in findings if not f.suppressed]
        assert [f.rule for f in active] == ["api-print"]
