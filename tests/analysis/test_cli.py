"""The ``python -m repro.analysis`` entry point, end to end.

Includes the PR's acceptance criteria: the repo-wide run over ``src/``
exits 0 (everything fixed or justified), and the known-bad corpus
makes the tool exit non-zero.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
CORPUS = Path(__file__).parent / "corpus"


def run_lint(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env=env,
    )


class TestExitCodes:
    def test_repo_wide_run_is_clean(self):
        """Acceptance: src/ has no unjustified invariant violations."""
        proc = run_lint("src/")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_known_bad_corpus_fails(self):
        """Acceptance: the bad snippets make the tool exit non-zero."""
        proc = run_lint(str(CORPUS))
        assert proc.returncode == 1
        assert "finding(s)" in proc.stdout

    def test_good_corpus_files_pass(self):
        proc = run_lint(
            str(CORPUS / "good_taint.py"),
            str(CORPUS / "good_rng.py"),
            str(CORPUS / "good_api.py"),
            str(CORPUS / "lwe" / "good_dtype.py"),
        )
        assert proc.returncode == 0, proc.stdout

    def test_missing_path_is_a_usage_error(self):
        proc = run_lint("does/not/exist")
        assert proc.returncode == 2


class TestOutputModes:
    def test_json_mode_is_machine_readable(self):
        proc = run_lint(str(CORPUS), "--json")
        payload = json.loads(proc.stdout)
        assert payload["files_scanned"] >= 8
        rules = {f["rule"] for f in payload["findings"]}
        assert {"dtype-mixed-arith", "taint-branch", "rng-unseeded",
                "api-assert"} <= rules
        assert payload["counts"]["api-print"] >= 2
        sup_rules = {f["rule"] for f in payload["suppressed"]}
        assert "rng-unseeded" in sup_rules

    def test_baseline_mode_lists_suppressions_with_reasons(self):
        proc = run_lint("src/", "--baseline")
        assert proc.returncode == 0
        assert "active findings: 0" in proc.stdout
        assert "suppressions (location, rule, reason):" in proc.stdout
        assert " -- " in proc.stdout  # at least one justified suppression

    def test_list_rules_covers_all_four_checkers(self):
        proc = run_lint("--list-rules")
        assert proc.returncode == 0
        for rule in ("dtype-mixed-arith", "taint-wire", "rng-unseeded",
                     "api-assert"):
            assert rule in proc.stdout

    def test_rule_filter(self):
        proc = run_lint(str(CORPUS), "--rules", "api-print", "--json")
        payload = json.loads(proc.stdout)
        assert payload["findings"]
        assert {f["rule"] for f in payload["findings"]} == {"api-print"}

    def test_unknown_rule_filter_is_a_usage_error(self):
        proc = run_lint(str(CORPUS), "--rules", "no-such-rule")
        assert proc.returncode == 2
