"""The ``python -m repro.analysis`` entry point, end to end.

Includes the PR's acceptance criteria: the repo-wide run over ``src/``
exits 0 (everything fixed or justified), and the known-bad corpus
makes the tool exit non-zero.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
CORPUS = Path(__file__).parent / "corpus"


def run_lint(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env=env,
    )


class TestExitCodes:
    def test_repo_wide_run_is_clean(self):
        """Acceptance: src/ has no unjustified invariant violations."""
        proc = run_lint("src/")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_known_bad_corpus_fails(self):
        """Acceptance: the bad snippets make the tool exit non-zero."""
        proc = run_lint(str(CORPUS))
        assert proc.returncode == 1
        assert "finding(s)" in proc.stdout

    def test_good_corpus_files_pass(self):
        proc = run_lint(
            str(CORPUS / "good_taint.py"),
            str(CORPUS / "good_rng.py"),
            str(CORPUS / "good_api.py"),
            str(CORPUS / "lwe" / "good_dtype.py"),
        )
        assert proc.returncode == 0, proc.stdout

    def test_missing_path_is_a_usage_error(self):
        proc = run_lint("does/not/exist")
        assert proc.returncode == 2


class TestOutputModes:
    def test_json_mode_is_machine_readable(self):
        proc = run_lint(str(CORPUS), "--json")
        payload = json.loads(proc.stdout)
        assert payload["files_scanned"] >= 8
        rules = {f["rule"] for f in payload["findings"]}
        assert {"dtype-mixed-arith", "taint-branch", "rng-unseeded",
                "api-assert"} <= rules
        assert payload["counts"]["api-print"] >= 2
        sup_rules = {f["rule"] for f in payload["suppressed"]}
        assert "rng-unseeded" in sup_rules

    def test_baseline_mode_lists_suppressions_with_reasons(self):
        proc = run_lint("src/", "--baseline")
        assert proc.returncode == 0
        assert "active findings: 0" in proc.stdout
        assert "suppressions (location, rule, reason):" in proc.stdout
        assert " -- " in proc.stdout  # at least one justified suppression

    def test_list_rules_covers_all_four_checkers(self):
        proc = run_lint("--list-rules")
        assert proc.returncode == 0
        for rule in ("dtype-mixed-arith", "taint-wire", "rng-unseeded",
                     "api-assert"):
            assert rule in proc.stdout

    def test_rule_filter(self):
        proc = run_lint(str(CORPUS), "--rules", "api-print", "--json")
        payload = json.loads(proc.stdout)
        assert payload["findings"]
        assert {f["rule"] for f in payload["findings"]} == {"api-print"}

    def test_unknown_rule_filter_is_a_usage_error(self):
        proc = run_lint(str(CORPUS), "--rules", "no-such-rule")
        assert proc.returncode == 2


class TestWallClockBudget:
    def test_repo_wide_run_fits_the_ci_budget(self):
        """Acceptance: whole-repo analysis stays under 30 s wall clock."""
        proc = run_lint("src/", "--max-seconds", "30")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_blown_budget_fails_even_when_clean(self):
        proc = run_lint(
            str(CORPUS / "good_taint.py"), "--max-seconds", "0.000001"
        )
        assert proc.returncode == 1
        assert "over the" in proc.stderr


class TestChangedOnly:
    @staticmethod
    def _git(cwd, *args):
        subprocess.run(
            ["git", "-c", "user.email=t@e.st", "-c", "user.name=t", *args],
            cwd=cwd,
            check=True,
            capture_output=True,
        )

    def run_in(self, cwd, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            env=env,
        )

    def test_reports_changed_files_plus_call_graph_dependents(
        self, tmp_path
    ):
        """A change to lib.py implicates its caller app.py, but never
        the unrelated other.py."""
        (tmp_path / "lib.py").write_text(
            "import pickle\n\n\ndef helper():\n    return 1\n\n\n"
            "def leak(sk):\n    return pickle.dumps(sk)\n",
            encoding="utf-8",
        )
        (tmp_path / "app.py").write_text(
            "from lib import helper\n\n\ndef use():\n    return helper()\n"
            "\n\ndef leak2(secret_key):\n"
            "    raise ValueError(f'{secret_key}')\n",
            encoding="utf-8",
        )
        (tmp_path / "other.py").write_text(
            "import pickle\n\n\ndef leak3(sk):\n"
            "    return pickle.dumps(sk)\n",
            encoding="utf-8",
        )
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        # Touch only lib.py.
        with open(tmp_path / "lib.py", "a", encoding="utf-8") as fh:
            fh.write("\n\nEXTRA = 1\n")

        proc = self.run_in(
            tmp_path,
            "lib.py",
            "app.py",
            "other.py",
            "--changed-only",
            "--json",
        )
        payload = json.loads(proc.stdout)
        reported = {f["path"] for f in payload["findings"]}
        assert any(p.endswith("lib.py") for p in reported)
        assert any(p.endswith("app.py") for p in reported), (
            "the caller of the changed module was not re-checked"
        )
        assert not any(p.endswith("other.py") for p in reported)
        # the whole program was still parsed for resolution
        assert payload["files_scanned"] == 3

    def test_no_changes_means_no_findings(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import pickle\n\n\ndef leak(sk):\n"
            "    return pickle.dumps(sk)\n",
            encoding="utf-8",
        )
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        proc = self.run_in(tmp_path, "mod.py", "--changed-only")
        assert proc.returncode == 0, proc.stdout
