"""Unit tests for the IR layer: CFG, dataflow fixpoint, call graph."""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.analysis.base import FileContext
from repro.analysis.ir import (
    CallGraph,
    FixpointDiverged,
    Program,
    build_cfg,
    shallow_exprs,
    solve_forward,
    union_join,
)

CORPUS = Path(__file__).parent / "corpus"


def func_node(source, name=None):
    tree = ast.parse(textwrap.dedent(source))
    funcs = [
        n
        for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    if name is None:
        return funcs[0]
    return next(f for f in funcs if f.name == name)


def program_from(source, path="src/repro/fake/mod.py"):
    source = textwrap.dedent(source)
    ctx = FileContext(path=path, source=source, tree=ast.parse(source))
    return Program.from_contexts([ctx])


class TestCfg:
    def test_straight_line_is_one_block(self):
        cfg = build_cfg(func_node("def f():\n    a = 1\n    return a\n"))
        reachable = [b for b in cfg.blocks if b.stmts]
        assert len(reachable) == 1

    def test_if_produces_a_diamond(self):
        cfg = build_cfg(
            func_node(
                """
                def f(x):
                    if x:
                        a = 1
                    else:
                        a = 2
                    return a
                """
            )
        )
        # entry branches two ways; both arms rejoin at the return block.
        assert len(cfg.entry.succs) == 2
        join_targets = {id(s) for b in cfg.entry.succs for s in b.succs}
        assert len(join_targets) == 1

    def test_while_has_a_back_edge(self):
        cfg = build_cfg(
            func_node(
                """
                def f(x):
                    while x > 0:
                        x -= 1
                    return x
                """
            )
        )
        back_edges = [
            (b.id, s.id) for b in cfg.blocks for s in b.succs if s.id <= b.id
        ]
        assert back_edges, "loop produced no back edge"

    def test_with_lock_sets_held(self):
        cfg = build_cfg(
            func_node(
                """
                def f(self):
                    before = 1
                    with self._lock:
                        inside = 2
                    after = 3
                """
            ),
            resolve_lock=lambda expr: "C.lock",
        )

        def held_of(marker):
            for block in cfg.blocks:
                for stmt in block.stmts:
                    if (
                        isinstance(stmt, ast.Assign)
                        and isinstance(stmt.targets[0], ast.Name)
                        and stmt.targets[0].id == marker
                    ):
                        return block.held
            raise AssertionError(f"no block assigns {marker}")

        assert held_of("before") == frozenset()
        assert held_of("inside") == {"C.lock"}
        assert held_of("after") == frozenset()

    def test_entry_held_seeds_every_block(self):
        cfg = build_cfg(
            func_node("def f(self):\n    a = 1\n"),
            entry_held=frozenset({"C.lock"}),
        )
        assert all("C.lock" in b.held for b in cfg.blocks if b.stmts)

    def test_shallow_exprs_excludes_nested_bodies(self):
        stmt = ast.parse("if x:\n    y = secret\n").body[0]
        names = [
            n.id
            for e in shallow_exprs(stmt)
            for n in ast.walk(e)
            if isinstance(n, ast.Name)
        ]
        assert "x" in names
        assert "secret" not in names


class TestDataflow:
    def test_loop_reaches_fixpoint(self):
        cfg = build_cfg(
            func_node(
                """
                def f(x):
                    t = source()
                    while x:
                        u = t
                    return u
                """
            )
        )

        def transfer(block, env):
            env = dict(env)
            for stmt in block.stmts:
                if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.targets[0], ast.Name
                ):
                    value = stmt.value
                    if isinstance(value, ast.Call):
                        env[stmt.targets[0].id] = frozenset({"S"})
                    elif isinstance(value, ast.Name):
                        env[stmt.targets[0].id] = env.get(
                            value.id, frozenset()
                        )
            return env

        _, out_states = solve_forward(cfg, transfer, {}, union_join)
        exit_envs = [
            out_states[b.id]
            for b in cfg.blocks
            if b.id in out_states and not b.succs
        ]
        assert any(env.get("u") == {"S"} for env in exit_envs)

    def test_divergent_transfer_raises(self):
        cfg = build_cfg(
            func_node("def f(x):\n    while x:\n        x = x\n")
        )
        def never_stable(block, env):
            return {"n": env.get("n", 0) + 1}

        def max_join(a, b):
            return {"n": max(a.get("n", 0), b.get("n", 0))}

        with pytest.raises(FixpointDiverged):
            solve_forward(cfg, never_stable, {}, max_join)


class TestProgramIndex:
    SOURCE = """
        import threading


        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self._avail = threading.Condition(self._lock)
                self._items = []  # guarded-by: _lock

            def take(self):
                with self._lock:
                    return self._items.pop()


        GLOBAL_LOCK = threading.Lock()
        TABLE = {}  # guarded-by: GLOBAL_LOCK
        """

    def test_lock_attrs_and_condition_aliasing(self):
        program = program_from(self.SOURCE)
        cls = program.classes_by_name["Pool"][0]
        assert cls.canonical_lock("_lock") == "_lock"
        # the Condition wraps _lock, so it IS _lock for ordering purposes
        assert cls.canonical_lock("_avail") == "_lock"
        assert cls.guarded["_items"] == "_lock"

    def test_module_globals_are_indexed(self):
        program = program_from(self.SOURCE)
        mod = next(iter(program.by_path.values()))
        assert "GLOBAL_LOCK" in mod.module_locks
        assert mod.guarded_globals["TABLE"] == "GLOBAL_LOCK"

    def test_resolve_lock_expr_on_self_attr(self):
        program = program_from(self.SOURCE)
        cls = program.classes_by_name["Pool"][0]
        take = program.method_of(cls, "take")
        with_stmt = next(
            n for n in ast.walk(take.node) if isinstance(n, ast.With)
        )
        token = program.resolve_lock_expr(
            with_stmt.items[0].context_expr, take
        )
        assert token == "Pool._lock"


class TestCallGraph:
    SOURCE = """
        class Conn:
            def send(self, data):
                return data


        class Service:
            def __init__(self, conn: Conn):
                self._conn: Conn | None = conn

            def _helper(self):
                return 1

            def handle(self):
                conn = self._conn
                conn.send(b"x")
                return self._helper()


        def top():
            return Service(Conn()).handle()
        """

    @staticmethod
    def resolved_names(graph):
        return {
            target.qualname
            for func in graph.all_functions()
            for site in graph.call_sites(func)
            for target in site.targets
        }

    def test_self_method_call_resolves(self):
        graph = CallGraph(program_from(self.SOURCE))
        assert "repro.fake.mod.Service._helper" in self.resolved_names(graph)

    def test_attr_borrowed_local_resolves_through_annotation(self):
        """``conn = self._conn`` types conn from the attribute annotation."""
        graph = CallGraph(program_from(self.SOURCE))
        assert "repro.fake.mod.Conn.send" in self.resolved_names(graph)

    def test_reverse_dependents_closes_over_callers(self):
        lib = """
            def helper():
                return 1
            """
        app = """
            from repro.fake.lib import helper


            def use():
                return helper()
            """
        lib_src = textwrap.dedent(lib)
        app_src = textwrap.dedent(app)
        contexts = [
            FileContext(
                path="src/repro/fake/lib.py",
                source=lib_src,
                tree=ast.parse(lib_src),
            ),
            FileContext(
                path="src/repro/fake/app.py",
                source=app_src,
                tree=ast.parse(app_src),
            ),
        ]
        program = Program.from_contexts(contexts)
        graph = CallGraph(program)
        closed = graph.reverse_dependents({"repro.fake.lib"})
        assert "repro.fake.app" in closed
