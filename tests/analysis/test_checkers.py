"""Every checker against its known-good / known-bad corpus files."""

from collections import Counter
from pathlib import Path

from repro.analysis.checkers import (
    all_rules,
    build_checkers,
    build_program_checkers,
)
from repro.analysis.runner import analyze_file, analyze_paths

CORPUS = Path(__file__).parent / "corpus"
CHECKERS = build_checkers()


def active_rules(path):
    return Counter(
        f.rule for f in analyze_file(path, CHECKERS) if not f.suppressed
    )


class TestDtypeChecker:
    def test_bad_file_trips_every_dtype_rule(self):
        rules = active_rules(CORPUS / "lwe" / "bad_dtype.py")
        assert rules["dtype-mixed-arith"] == 2
        assert rules["dtype-missing-qbits"] == 2
        assert rules["dtype-signed-cast"] == 1

    def test_good_file_is_clean(self):
        assert not active_rules(CORPUS / "lwe" / "good_dtype.py")

    def test_rules_are_scoped_to_crypto_dirs(self, tmp_path):
        """The same bad code outside lwe/rlwe/homenc/pir is not flagged."""
        outside = tmp_path / "elsewhere.py"
        outside.write_text(
            (CORPUS / "lwe" / "bad_dtype.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        rules = active_rules(outside)
        assert not any(r.startswith("dtype-") for r in rules)


class TestTaintChecker:
    def test_bad_file_trips_every_taint_rule(self):
        rules = active_rules(CORPUS / "bad_taint.py")
        assert rules["taint-branch"] == 3  # if, while, flowed-through
        assert rules["taint-log"] == 2  # print + logger.info
        assert rules["taint-raise"] == 1
        assert rules["taint-wire"] == 1

    def test_good_file_is_clean(self):
        assert not active_rules(CORPUS / "good_taint.py")


class TestRngChecker:
    def test_bad_file_trips_every_rng_rule(self):
        rules = active_rules(CORPUS / "bad_rng.py")
        assert rules["rng-stdlib"] == 1
        assert rules["rng-unseeded"] == 1
        assert rules["rng-legacy"] == 2  # np.random.seed + np.random.rand

    def test_good_file_is_clean(self):
        assert not active_rules(CORPUS / "good_rng.py")


class TestApiChecker:
    def test_bad_file_trips_every_api_rule(self):
        rules = active_rules(CORPUS / "bad_api.py")
        assert rules["api-assert"] == 1
        assert rules["api-print"] == 1
        assert rules["api-wallclock"] == 1

    def test_good_file_is_clean(self):
        assert not active_rules(CORPUS / "good_api.py")

    def test_cli_modules_are_exempt(self, tmp_path):
        cli = tmp_path / "cli.py"
        cli.write_text("print('hello')\n", encoding="utf-8")
        assert not active_rules(cli)


class TestNetChecker:
    def test_bad_file_trips_the_dispatch_rule(self):
        rules = active_rules(CORPUS / "bad_net.py")
        assert rules["net-dispatch"] == 1

    def test_good_file_is_clean(self):
        assert not active_rules(CORPUS / "good_net.py")

    def test_net_package_itself_is_exempt(self, tmp_path):
        """Transport implementations are the legitimate dispatch site."""
        net_dir = tmp_path / "repro" / "net"
        net_dir.mkdir(parents=True)
        inside = net_dir / "loopback.py"
        inside.write_text(
            (CORPUS / "bad_net.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        assert not active_rules(inside)


class TestKernelSeamChecker:
    def test_bad_file_trips_the_seam_rule(self):
        """Three direct constructions + two raw ring products; the
        float-geometry product at the bottom stays legal."""
        rules = active_rules(CORPUS / "lwe" / "bad_kernelseam.py")
        assert rules["kernel-seam"] == 5

    def test_backends_package_itself_is_exempt(self, tmp_path):
        """The seam is the one legitimate home of the raw kernel."""
        seam_dir = tmp_path / "repro" / "lwe" / "backends"
        seam_dir.mkdir(parents=True)
        inside = seam_dir / "reference.py"
        inside.write_text(
            (CORPUS / "lwe" / "bad_kernelseam.py").read_text(
                encoding="utf-8"
            ),
            encoding="utf-8",
        )
        assert not active_rules(inside)

    def test_modular_module_is_exempt(self, tmp_path):
        lwe_dir = tmp_path / "repro" / "lwe"
        lwe_dir.mkdir(parents=True)
        inside = lwe_dir / "modular.py"
        inside.write_text(
            (CORPUS / "lwe" / "bad_kernelseam.py").read_text(
                encoding="utf-8"
            ),
            encoding="utf-8",
        )
        assert not active_rules(inside)

    def test_serving_corpus_stays_clean(self):
        """The refactored hot modules go through the registry."""
        assert not active_rules(CORPUS / "core" / "ranking.py")
        assert not active_rules(CORPUS / "core" / "cluster_runtime.py")[
            "kernel-seam"
        ]


class TestBatchChecker:
    def test_bad_file_trips_the_batch_loop_rule(self):
        rules = active_rules(CORPUS / "core" / "cluster_runtime.py")
        assert rules["batch-loop"] == 4

    def test_good_file_is_clean(self):
        assert not active_rules(CORPUS / "core" / "scheduler.py")

    def test_rule_is_scoped_to_hot_modules(self, tmp_path):
        """The same loops in any other module are not flagged."""
        source = (CORPUS / "core" / "cluster_runtime.py").read_text(
            encoding="utf-8"
        )
        core = tmp_path / "core"
        core.mkdir()
        other = core / "loadgen.py"
        other.write_text(source, encoding="utf-8")
        assert not active_rules(other)
        outside = tmp_path / "cluster_runtime.py"
        outside.write_text(source, encoding="utf-8")
        assert not active_rules(outside)

    def test_shipped_hot_modules_are_clean(self):
        """The real batch-plane modules obey their own rule."""
        import repro.core.cluster_runtime as cr
        import repro.core.scheduler as sched

        for module in (cr, sched):
            assert not active_rules(Path(module.__file__))["batch-loop"]


class TestHotPathChecker:
    def test_bad_file_trips_the_precompute_rule(self):
        rules = active_rules(CORPUS / "core" / "client.py")
        assert rules["hot-path-precompute"] == 5

    def test_good_file_is_clean(self):
        assert not active_rules(CORPUS / "core" / "ranking.py")

    def test_rule_is_scoped_to_online_modules(self, tmp_path):
        """The same calls anywhere else are legitimate offline work."""
        source = (CORPUS / "core" / "client.py").read_text(encoding="utf-8")
        core = tmp_path / "core"
        core.mkdir()
        other = core / "indexer.py"
        other.write_text(source, encoding="utf-8")
        assert not active_rules(other)
        outside = tmp_path / "client.py"
        outside.write_text(source, encoding="utf-8")
        assert not active_rules(outside)

    def test_shipped_online_modules_are_clean(self):
        """The real client and ranking modules obey their own rule."""
        import repro.core.client as client
        import repro.core.ranking as ranking

        for module in (client, ranking):
            assert not active_rules(Path(module.__file__))[
                "hot-path-precompute"
            ]


class TestIngestChecker:
    def test_bad_file_trips_every_materialize_shape(self):
        rules = active_rules(CORPUS / "ingest" / "bad_materialize.py")
        # vstack, concatenate, list(batches()), sorted(genexp),
        # tuple(read_batches()).
        assert rules["ingest-materialize"] == 5

    def test_good_file_is_clean(self):
        assert not active_rules(CORPUS / "ingest" / "good_materialize.py")

    def test_rule_is_scoped_to_the_ingest_dir(self, tmp_path):
        """The same code outside src/repro/ingest/ is not flagged."""
        outside = tmp_path / "elsewhere.py"
        outside.write_text(
            (CORPUS / "ingest" / "bad_materialize.py").read_text(
                encoding="utf-8"
            ),
            encoding="utf-8",
        )
        assert not active_rules(outside)["ingest-materialize"]

    def test_shipped_ingest_plane_is_clean(self):
        import repro.ingest.pipeline as pipeline

        src_dir = Path(pipeline.__file__).parent
        for path in sorted(src_dir.glob("*.py")):
            assert not active_rules(path)["ingest-materialize"], path


class TestFramework:
    def test_parse_error_becomes_a_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n", encoding="utf-8")
        findings = analyze_file(broken, CHECKERS)
        assert [f.rule for f in findings] == ["parse-error"]

    def test_every_checker_documents_its_rules(self):
        specs = all_rules()
        seen = [spec.rule for spec in specs]
        assert len(seen) == len(set(seen)), "duplicate rule ids"
        for spec in specs:
            assert spec.summary and spec.invariant

    def test_every_rule_has_a_positive_corpus_case(self):
        """Each shipped rule fires somewhere in the bad corpus files.

        The batch and hotpath checkers are filename-scoped (they only
        bind in their hot modules), so their known-bad corpus files
        carry the hot-module names under ``corpus/core/`` instead of
        the ``bad_`` prefix.  Whole-program rules (lock-*, itaint-*)
        run through :func:`analyze_paths` with the program checkers.
        """
        fired = Counter()
        paths = sorted(CORPUS.rglob("bad_*.py")) + [
            CORPUS / "core" / "cluster_runtime.py",
            CORPUS / "core" / "client.py",
        ]
        for path in paths:
            fired.update(active_rules(path))
        report = analyze_paths(paths, [], build_program_checkers())
        fired.update(f.rule for f in report.findings)
        for spec in all_rules():
            assert fired[spec.rule] > 0, f"no corpus case for {spec.rule}"
