"""Known-bad transport-seam snippets (tiptoe-lint self-test corpus)."""


def in_process_shortcut(engine, request):
    # BAD: dispatching on the endpoint object skips the transport seam,
    # so this code path silently breaks on a socket deployment.
    return engine.ranking_endpoint.dispatch(request)
