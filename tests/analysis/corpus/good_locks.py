"""Known-good lock discipline (tiptoe-lint self-test corpus)."""

import threading


class GuardedCounter:
    """Every guarded access runs under the declared lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._count = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self._count += 1
            self._ready.notify_all()

    def wait_nonzero(self):
        with self._lock:
            while self._count == 0:
                self._ready.wait()
            return self._count

    # requires-lock: _lock
    def _reset_locked(self):
        self._count = 0

    def reset(self):
        with self._lock:
            self._reset_locked()


MODULE_LOCK = threading.Lock()
SHARED: list = []  # guarded-by: MODULE_LOCK


def push(item):
    with MODULE_LOCK:
        SHARED.append(item)
