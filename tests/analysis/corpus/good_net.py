"""Known-good transport-seam snippets: requests cross the channel."""


def over_the_seam(channel, request_bytes):
    # GOOD: the channel resolves the service by name through whatever
    # transport is bound -- loopback in tests, TCP in a deployment.
    return channel.call("ranking", "ranking", "answer", request_bytes)
