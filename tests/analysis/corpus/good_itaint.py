"""Known-good interprocedural taint (tiptoe-lint self-test corpus)."""

import logging

logger = logging.getLogger(__name__)


def fresh_secret(scheme, rng):
    return scheme.gen_secret(rng)


def log_shape_only(scheme, rng):
    key = fresh_secret(scheme, rng)
    logger.info("key dims %s", key.shape)  # OK: declassified metadata
    return key


def count_keys(scheme, rng):
    keys = []
    for _ in range(3):
        keys.append(fresh_secret(scheme, rng))
    logger.info("minted %d keys", len(keys))  # OK: len() declassifies
    return keys
