"""A pragma with no reason string suppresses nothing."""


def chatty(x):
    print(x)  # tiptoe-lint: disable=api-print
    return x
