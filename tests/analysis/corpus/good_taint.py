"""Known-good taint snippets: public structure, cleared taint."""

import logging

logger = logging.getLogger(__name__)


def shape_is_public(sk):
    if sk.shape[0] != 8:  # GOOD: array shape is a public parameter
        raise ValueError("secret has the wrong dimension")
    return True


def length_is_public(secret_key):
    n = len(secret_key)  # GOOD: len() declassifies
    if n == 0:
        raise ValueError("empty key")
    return n


def raises_shape_only(sk):
    raise ValueError(f"expected shape (8,), got {sk.shape}")  # GOOD


def reassignment_clears_taint(sk):
    sk = 0  # GOOD: name rebound to public data
    if sk:
        return 1
    return 0


def logs_public_data(sk, n_queries):
    logger.debug("served %d queries", n_queries)  # GOOD: untainted args
    return sk


def branch_on_public_flag(scheme, rng, verbose):
    sk = scheme.gen_secret(rng)
    if verbose:  # GOOD: condition is untainted
        logger.debug("generated a key of dim %d", sk.shape[0])
    return sk
