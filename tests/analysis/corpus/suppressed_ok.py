"""Bad patterns, each with a justified pragma -> zero active findings."""

import numpy as np


def unseeded_but_justified():
    # tiptoe-lint: disable=rng-unseeded -- corpus fixture: standalone pragma covers the next line
    return np.random.default_rng()


def chatty_but_justified(x):
    print(x)  # tiptoe-lint: disable=api-print -- corpus fixture: same-line pragma form
    return x


def multiple_rules_one_pragma(x):
    # tiptoe-lint: disable=api-assert,api-print -- corpus fixture: rule list form
    assert x > 0
    return x


def disable_all_form(x):
    print(x)  # tiptoe-lint: disable=all -- corpus fixture: blanket form
    return x
