"""Known-bad blocking-under-lock, requires-lock, and annotation cases."""

import threading
import time


class BlocksUnderLock:
    def __init__(self):
        self._lock = threading.Lock()
        self._last = 0.0  # guarded-by: _lock

    def slow_update(self, value):
        with self._lock:
            time.sleep(0.01)  # BAD: blocking call while holding the lock
            self._last = value


class NeedsLock:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # guarded-by: _lock

    # requires-lock: _lock
    def _append(self, item):
        self._items.append(item)

    def add(self, item):
        self._append(item)  # BAD: caller does not hold self._lock

    def add_locked(self, item):
        with self._lock:
            self._append(item)


class WrongAnnotation:
    def __init__(self):
        self._lock = threading.Lock()
        # BAD: there is no attribute named _mutex on this class.
        self._data = 0  # guarded-by: _mutex
