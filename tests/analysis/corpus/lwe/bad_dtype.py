"""Known-bad dtype/overflow snippets (tiptoe-lint self-test corpus).

Lives under a ``lwe/`` directory so the path-scoped dtype checker
applies.  Each function violates exactly one dtype rule; the expected
findings are asserted in ``tests/analysis/test_checkers.py``.
"""

import numpy as np

from repro.lwe import modular


def mixes_int_literal(q_bits):
    acc = modular.to_ring(np.arange(8), q_bits)
    return acc + 1  # BAD: bare Python int in ring arithmetic


def mixes_signed_array(q_bits):
    ring = modular.to_ring(np.arange(8), q_bits)
    signed = np.asarray(np.arange(8), dtype=np.int64)
    return ring * signed  # BAD: signed array mixed into the ring


def forgets_q_bits(a, b):
    return modular.matmul(a, b)  # BAD: which ring is this?


def forgets_q_bits_bare(values):
    return to_ring(values)  # BAD: unambiguous helper, q_bits missing


def casts_to_signed(q_bits):
    ring = modular.to_ring(np.arange(8), q_bits)
    return ring.astype(np.int64)  # BAD: silently leaves the ring


def to_ring(values):  # noqa -- stand-in so the module executes if imported
    return values
