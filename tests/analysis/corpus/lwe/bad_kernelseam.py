"""Known-bad kernel-seam snippets (tiptoe-lint self-test corpus).

Lives under a ``lwe/`` directory (but outside ``backends/``) so the
seam exemption does not apply.  Each function executes the hot ring
product without going through the backend registry; the expected
findings are asserted in ``tests/analysis/test_checkers.py``.
"""

import numpy as np

from repro.lwe import modular
from repro.lwe.modular import StackedPlan


def builds_plan_directly(matrix, q_bits):
    plan = StackedPlan(matrix, q_bits)  # BAD: pins the reference kernel
    return plan


def builds_plan_via_module(matrix, q_bits):
    # BAD: same construction, dotted spelling
    return modular.StackedPlan(matrix, q_bits)


def restores_plan_from_sidecar(matrix, meta):
    # BAD: from_metadata is still direct construction
    return modular.StackedPlan.from_metadata(matrix, meta)


def multiplies_ring_with_numpy(ring_matrix, queries):
    # BAD: np.matmul on ring data -- inexact past 2^53, untimed
    return np.matmul(ring_matrix, queries)


def multiplies_ring_with_operator(db, stacked_queries):
    return db.ring @ stacked_queries  # BAD: `@` on ring data


def float_geometry_is_fine(embeddings, centroids):
    # OK: float similarity math is not ring data; never flagged.
    return embeddings @ centroids.T
