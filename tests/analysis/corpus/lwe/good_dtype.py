"""Known-good dtype snippets: the disciplined forms of the bad file."""

import numpy as np

from repro.lwe import modular


def wraps_scalars(q_bits):
    dtype = modular.dtype_for(q_bits)
    acc = modular.to_ring(np.arange(8), q_bits)
    return acc + dtype(1)  # GOOD: scalar lifted into the ring dtype


def passes_q_bits(a, b, q_bits):
    return modular.matmul(a, b, q_bits)  # GOOD: modulus explicit


def passes_q_bits_keyword(a, b):
    return modular.add(a, b, q_bits=32)  # GOOD: keyword form


def centers_properly(q_bits):
    ring = modular.to_ring(np.arange(8), q_bits)
    return modular.centered(ring, q_bits)  # GOOD: sanctioned signed view


def unsigned_cast_is_fine(q_bits):
    ring = modular.to_ring(np.arange(8), q_bits)
    return ring.astype(np.uint64)  # GOOD: stays unsigned


def ring_times_ring(q_bits):
    a = modular.to_ring(np.arange(8), q_bits)
    b = modular.to_ring(np.arange(8), q_bits)
    return modular.add(a, b, q_bits)
