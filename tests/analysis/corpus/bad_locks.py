"""Known-bad lock discipline: one unguarded write (self-test corpus)."""

import threading


class UnguardedCounter:
    """A counter whose increment forgets the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock

    def bump(self):
        self._count += 1  # BAD: write without holding self._lock

    def value(self):
        with self._lock:
            return self._count
