"""Known-bad RNG hygiene snippets (tiptoe-lint self-test corpus)."""

import random  # BAD: stdlib random in library code

import numpy as np


def unseeded():
    return np.random.default_rng()  # BAD: hidden fresh entropy


def legacy_seed():
    np.random.seed(0)  # BAD: global mutable state


def legacy_sampling(n):
    return np.random.rand(n)  # BAD: legacy global-state API


def stdlib_choice(items):
    return random.choice(items)
