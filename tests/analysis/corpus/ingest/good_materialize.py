"""Known-good ingest snippets: bounded, per-batch work."""

import numpy as np


def preallocates_and_fills(source, num_docs, dim):
    out = np.zeros((num_docs, dim))  # GOOD: one fixed allocation
    cursor = 0
    for batch in source.batches():
        stop = cursor + len(batch)
        out[cursor:stop] = batch.embeddings  # GOOD: per-batch slice fill
        cursor = stop
    return out


def bounded_per_batch_copy(batch):
    return list(batch.texts)  # GOOD: one batch, bounded by batch_size


def fixed_size_list(num_clusters):
    return list(range(num_clusters))  # GOOD: scales with k, not corpus


def streams_through(source):
    total = 0
    for batch in source.batches():  # GOOD: iterate, never drain
        total += len(batch)
    return total
