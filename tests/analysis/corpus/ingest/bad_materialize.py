"""Known-bad ingest snippets: whole-corpus materialization."""

import numpy as np


def stacks_the_corpus(source):
    rows = []
    for batch in source.batches():
        rows.append(batch.embeddings)
    return np.vstack(rows)  # BAD: one array spanning every batch


def concatenates_ids(source):
    parts = [b.doc_ids for b in source.batches()]
    return np.concatenate(parts)  # BAD: same shape, different spelling


def drains_the_stream(source):
    return list(source.batches())  # BAD: every batch resident at once


def drains_a_generator(source):
    return sorted(doc for batch in source.batches() for doc in batch)  # BAD


def tuples_read_batches(path):
    return tuple(read_batches(path))  # BAD: drains a batch reader


def read_batches(path):
    yield path
