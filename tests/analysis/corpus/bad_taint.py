"""Known-bad secret-taint snippets (tiptoe-lint self-test corpus)."""

import logging
import pickle

logger = logging.getLogger(__name__)


def branches_on_secret(scheme, rng):
    sk = scheme.gen_secret(rng)
    if sk.s[0] == 0:  # BAD: control flow depends on key material
        return None
    return sk


def loops_on_secret(sk):
    while sk[0] > 0:  # BAD: loop condition depends on the secret
        sk = sk[1:]
    return sk


def prints_secret(sk):
    print("debug key:", sk)  # BAD: secret reaches a terminal


def logs_secret(secret_key):
    logger.info("key=%s", secret_key)  # BAD: secret reaches the log tree


def raises_with_secret(sk):
    raise ValueError(f"bad key {sk}")  # BAD: secret in exception message


def serializes_secret(sk):
    return pickle.dumps(sk)  # BAD: plaintext secret on the wire


def taint_flows_through_assignment(scheme, rng):
    keys_material = scheme.keygen(rng)
    derived = keys_material
    masked = derived[0] + 1
    if masked:  # BAD: still derived from the keygen output
        return True
    return False
