"""Known-bad API hygiene snippets (tiptoe-lint self-test corpus)."""


def validates_with_assert(x):
    assert x > 0, "x must be positive"  # BAD: stripped under python -O
    return x


def chatty(x):
    print("value:", x)  # BAD: library module writing to stdout
    return x


def wall_clock_timing():
    import time

    start = time.time()  # BAD: wall-clock; use perf_counter / Clock
    return start
