"""Known-good API hygiene snippets: exceptions and logging."""

import logging

logger = logging.getLogger(__name__)


def validates_with_exceptions(x):
    if x <= 0:
        raise ValueError("x must be positive")  # GOOD: survives -O
    return x


def quiet(x):
    logger.debug("value: %r", x)  # GOOD: routed through logging
    return x
