"""Known-bad lock ordering: two acquisition cycles (self-test corpus)."""

import threading


class Transfer:
    """Acquires its two locks in both orders directly."""

    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def a_then_b(self):
        with self._a:
            with self._b:
                pass

    def b_then_a(self):
        with self._b:
            with self._a:  # BAD: opposite order -> deadlock cycle
                pass


class CrossFunction:
    """The reversed order only appears through a callee's acquisition."""

    def __init__(self):
        self._outer = threading.Lock()
        self._inner = threading.Lock()

    def _grab_inner(self):
        with self._inner:
            pass

    def _grab_outer(self):
        with self._outer:
            pass

    def forward(self):
        with self._outer:
            self._grab_inner()

    def backward(self):
        with self._inner:
            self._grab_outer()  # BAD: cycle via the callee's lock
