"""Known-good RNG snippets: explicit, seedable, replayable."""

import numpy as np

from repro.lwe import sampling


def seeded(seed):
    return np.random.default_rng(seed)  # GOOD: caller controls the seed


def resolved(rng=None):
    rng = sampling.resolve_rng(rng)  # GOOD: the sanctioned fallback
    return rng.integers(0, 10)


def resolved_deterministic(rng=None):
    rng = sampling.resolve_rng(rng, fallback_seed=0)  # GOOD
    return rng.integers(0, 10)


def generator_methods(rng):
    return rng.normal(0.0, 1.0, 8)  # GOOD: a Generator, not global state
