"""Known-bad interprocedural taint: secrets flow through helpers.

Each function trips exactly one ``itaint-*`` rule; none of them is
visible to the intraprocedural ``taint-*`` checker, which cannot see
that the helpers return key material.
"""

import logging
import pickle

logger = logging.getLogger(__name__)


def fresh_secret(scheme, rng):
    sk = scheme.gen_secret(rng)
    return sk


def relabelled(scheme, rng):
    material = fresh_secret(scheme, rng)
    return material


def two_hop_log(scheme, rng):
    key = relabelled(scheme, rng)
    logger.info("minted key %s", key)  # BAD: secret via two helpers


def hop_branch(scheme, rng):
    key = fresh_secret(scheme, rng)
    if key:  # BAD: control flow on helper-minted key material
        return 1
    return 0


def hop_raise(scheme, rng):
    key = fresh_secret(scheme, rng)
    raise ValueError(f"unusable key {key}")  # BAD: secret in message


def hop_wire(scheme, rng):
    key = fresh_secret(scheme, rng)
    return pickle.dumps(key)  # BAD: helper-minted secret serialized
