"""Known-bad batch-plane snippets (tiptoe-lint self-test corpus).

This file deliberately carries the name of a batch-plane hot module so
the ``batch-loop`` rule binds; every loop below is the per-query
regression the rule exists to catch.
"""


def per_query_loop(service, queries):
    # BAD: one matrix-vector product per query streams the index from
    # memory Q times; stack the queries and run one GEMM.
    answers = []
    for query in queries:
        answers.append(service.answer(query))
    return answers


def per_query_comprehension(modular, matrix, chunks, q_bits):
    # BAD: same regression, comprehension spelling.
    return [modular.matmul(matrix, chunk, q_bits) for chunk in chunks]


def per_query_apply(scheme, matrix, cts):
    # BAD: scheme.apply is the per-query kernel entry point.
    out = []
    while cts:
        out.append(scheme.apply(matrix, cts.pop()))
    return out


def per_worker_matvec(modular, workers, ct, q_bits):
    # BAD: matvec in a loop over workers is still one scan per call
    # when the ciphertext could be a stacked matrix.
    return [
        modular.matvec(worker.matrix_slice, ct, q_bits) for worker in workers
    ]
