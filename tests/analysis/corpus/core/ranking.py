"""Known-good online-path snippets (tiptoe-lint self-test corpus).

Carries the name of a precompute-plane hot module; everything below
consumes already-prepared state, which is exactly what the
``hot-path-precompute`` rule permits.
"""


def rank(client, keys, quantized, cluster, rng, service):
    # GOOD: build_query/answer/decode consume the token's precomputed
    # hint products; no ahead-of-time work runs here.
    query = client.build_query(keys, quantized, cluster, rng)
    answer = service.answer(query)
    return client.decode_scores(keys, answer, None)


def cached_context(ntt_context, n, p):
    # GOOD: the registry accessor returns the cached table set.
    return ntt_context(n, p)


def take_pooled_token(pool):
    # GOOD: pooled tokens were minted off the query path.
    return pool.take_nowait()
