"""Known-good batch-plane snippets (tiptoe-lint self-test corpus).

Named after the scheduler hot module so the ``batch-loop`` rule binds;
everything here is the stacked idiom the rule wants, plus the loop
shapes that are legitimately per-item (no kernel call inside).
"""


def stacked_batch(service, batch):
    # GOOD: one stacked GEMM per shard via the batched entry point.
    return service.answer_stacked(batch)


def fan_answers_out(slots, answers):
    # GOOD: looping to distribute results is not a kernel loop.
    for slot, answer in zip(slots, answers):
        slot.resolve(answer)


def per_worker_stacked(workers, stacked):
    # GOOD: per-worker loop over the *batched* entry point -- each
    # iteration is one GEMM over that worker's shard, not one query.
    return [worker.answer_stacked(stacked) for worker in workers]


def outside_any_loop(service, query):
    # GOOD: a single per-query call not inside a loop (the serial
    # single-query path is allowed to exist as a fallback).
    return service.answer(query)
