"""Known-bad online-path snippets (tiptoe-lint self-test corpus).

This file deliberately carries the name of a precompute-plane hot
module so the ``hot-path-precompute`` rule binds; every call below
puts ahead-of-time crypto back on the latency-critical path.
"""


def search_with_inline_preprocess(scheme, matrix, query):
    # BAD: preprocessing the database matrix per search re-runs the
    # whole offline phase inline.
    prep = scheme.preprocess(matrix)
    return scheme.apply(prep, query)


def mint_inline(scheme, enc_key, prep):
    # BAD: evaluate_hint is the server's ahead-of-time hint product;
    # on the query path it costs one forward NTT per chunk.
    return scheme.evaluate_hint(enc_key, prep)


def mint_inline_batched(scheme, enc_keys, prep):
    # BAD: the batched spelling is still the same offline work.
    return scheme.evaluate_hint_batch(enc_keys, prep)


def build_tables_inline(n, p, NttContext):
    # BAD: constructing an NttContext rebuilds twiddle tables; use the
    # process-wide ntt_context(n, p) registry instead.
    return NttContext(n, p)


def rebuild_hint_table(scheme, prep):
    # BAD: hint_ntt_table recomputes every forward NTT the sidecar
    # exists to persist.
    return scheme.hint_ntt_table(prep)
