"""The interprocedural taint checker against its corpus, plus the
seeded two-hop secret-to-log injection from the acceptance criteria."""

from collections import Counter
from pathlib import Path

from repro.analysis.checkers import build_checkers, build_program_checkers
from repro.analysis.runner import analyze_paths

CORPUS = Path(__file__).parent / "corpus"

ITAINT_RULES = {"itaint-branch", "itaint-log", "itaint-raise", "itaint-wire"}


def itaint_findings(*paths):
    report = analyze_paths(
        list(paths), [], build_program_checkers(ITAINT_RULES)
    )
    return report.findings


class TestSeededInjection:
    def test_two_hop_secret_to_log_is_exactly_one_finding(self):
        """Acceptance: gen_secret -> helper -> helper -> logger.info."""
        findings = [
            f
            for f in itaint_findings(CORPUS / "bad_itaint.py")
            if f.rule == "itaint-log"
        ]
        assert len(findings) == 1
        (finding,) = findings
        assert "logger.info" in (finding.snippet or "")
        assert "call chain" in finding.message

    def test_the_intraprocedural_checker_cannot_see_it(self):
        """The two-hop flow is invisible per-file -- that's the point."""
        report = analyze_paths(
            [CORPUS / "bad_itaint.py"], build_checkers({"taint-log"})
        )
        assert not report.findings


class TestItaintCorpus:
    def test_each_rule_fires_exactly_once(self):
        rules = Counter(
            f.rule for f in itaint_findings(CORPUS / "bad_itaint.py")
        )
        assert rules == {
            "itaint-branch": 1,
            "itaint-log": 1,
            "itaint-raise": 1,
            "itaint-wire": 1,
        }

    def test_good_file_is_clean(self):
        assert not itaint_findings(CORPUS / "good_itaint.py")

    def test_declassified_metadata_does_not_propagate(self):
        """.shape / len() on helper-returned secrets stay unflagged."""
        findings = itaint_findings(CORPUS / "good_itaint.py")
        assert findings == []
