"""Tests for RNS ring arithmetic."""

import numpy as np
import pytest

from repro.rlwe.ntt import find_ntt_primes, negacyclic_convolve_reference
from repro.rlwe.poly import RnsContext


@pytest.fixture(scope="module")
def ring():
    return RnsContext(32, find_ntt_primes(32, 28, 2))


class TestRepresentation:
    def test_int_round_trip(self, ring):
        rng = np.random.default_rng(0)
        coeffs = [int(x) for x in rng.integers(0, ring.q, size=ring.n)]
        assert ring.to_ints(ring.from_ints(coeffs)) == coeffs

    def test_signed_round_trip(self, ring):
        coeffs = np.array([-3, -1, 0, 1, 5] + [0] * (ring.n - 5))
        centered = ring.to_centered_ints(ring.from_signed(coeffs))
        assert centered == list(coeffs)

    def test_distinct_primes_enforced(self):
        p = find_ntt_primes(32, 28, 1)[0]
        with pytest.raises(ValueError):
            RnsContext(32, (p, p))


class TestArithmetic:
    def test_add_sub_match_integers(self, ring):
        rng = np.random.default_rng(1)
        a = [int(x) for x in rng.integers(0, ring.q, size=ring.n)]
        b = [int(x) for x in rng.integers(0, ring.q, size=ring.n)]
        got = ring.to_ints(ring.add(ring.from_ints(a), ring.from_ints(b)))
        assert got == [(x + y) % ring.q for x, y in zip(a, b)]
        got = ring.to_ints(ring.sub(ring.from_ints(a), ring.from_ints(b)))
        assert got == [(x - y) % ring.q for x, y in zip(a, b)]

    def test_neg(self, ring):
        a = ring.from_ints([1] + [0] * (ring.n - 1))
        assert ring.to_ints(ring.neg(a))[0] == ring.q - 1

    def test_scalar_mul(self, ring):
        a = ring.from_ints([2] + [0] * (ring.n - 1))
        out = ring.to_ints(ring.scalar_mul(a, ring.q - 1))  # times -1
        assert out[0] == ring.q - 2

    def test_multiply_matches_reference_per_prime(self, ring):
        rng = np.random.default_rng(2)
        a = [int(x) for x in rng.integers(0, 1000, size=ring.n)]
        b = [int(x) for x in rng.integers(0, 1000, size=ring.n)]
        got = ring.multiply(ring.from_ints(a), ring.from_ints(b))
        for i, p in enumerate(ring.primes):
            want = negacyclic_convolve_reference(
                np.array(a, dtype=np.uint64) % np.uint64(p),
                np.array(b, dtype=np.uint64) % np.uint64(p),
                p,
            )
            assert np.array_equal(got[i], want)


class TestSampling:
    def test_uniform_covers_range(self, ring):
        rng = np.random.default_rng(3)
        poly = ring.sample_uniform(rng)
        assert poly.shape == (ring.k, ring.n)
        for i, p in enumerate(ring.primes):
            assert poly[i].max() < p

    def test_ternary_values(self, ring):
        rng = np.random.default_rng(4)
        vals = set(ring.to_centered_ints(ring.sample_ternary(rng)))
        assert vals <= {-1, 0, 1}

    def test_gaussian_is_small(self, ring):
        rng = np.random.default_rng(5)
        vals = ring.to_centered_ints(ring.sample_gaussian(rng, 3.2))
        assert max(abs(v) for v in vals) < 40
