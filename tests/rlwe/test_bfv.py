"""Tests for the outer BFV-style scheme."""

import numpy as np
import pytest

from repro.lwe.sampling import seeded_rng
from repro.rlwe import BfvParams, BfvScheme
from repro.rlwe.ntt import negacyclic_convolve_reference


@pytest.fixture(scope="module")
def scheme():
    return BfvScheme(BfvParams.create(n=64, t=65537, prime_bits=30, num_primes=2))


@pytest.fixture(scope="module")
def wide_scheme():
    """Plaintext modulus near 2^32 -- the homenc configuration."""
    return BfvScheme(
        BfvParams.create(n=64, t=4294967291, prime_bits=30, num_primes=3)
    )


class TestRoundTrip:
    def test_encrypt_decrypt(self, scheme):
        rng = seeded_rng(0)
        sk = scheme.gen_secret(rng)
        msg = rng.integers(0, scheme.params.t, size=scheme.params.n)
        ct = scheme.encrypt(sk, msg, rng)
        assert np.array_equal(scheme.decrypt(sk, ct), msg)

    def test_wide_plaintext_modulus(self, wide_scheme):
        rng = seeded_rng(1)
        sk = wide_scheme.gen_secret(rng)
        msg = rng.integers(0, wide_scheme.params.t, size=wide_scheme.params.n)
        ct = wide_scheme.encrypt(sk, msg, rng)
        assert np.array_equal(
            wide_scheme.decrypt(sk, ct).astype(np.uint64), msg.astype(np.uint64)
        )

    def test_short_message_padded(self, scheme):
        rng = seeded_rng(2)
        sk = scheme.gen_secret(rng)
        ct = scheme.encrypt(sk, np.array([7, 8]), rng)
        out = scheme.decrypt(sk, ct)
        assert out[0] == 7 and out[1] == 8 and not out[2:].any()

    def test_oversized_message_rejected(self, scheme):
        with pytest.raises(ValueError):
            scheme.encode(np.zeros(scheme.params.n + 1, dtype=int))

    def test_fresh_noise_budget_is_large(self, scheme):
        rng = seeded_rng(3)
        sk = scheme.gen_secret(rng)
        msg = np.arange(scheme.params.n) % scheme.params.t
        ct = scheme.encrypt(sk, msg, rng)
        assert scheme.noise_budget_bits(sk, ct, msg) > 20


class TestHomomorphism:
    def test_addition(self, scheme):
        rng = seeded_rng(4)
        sk = scheme.gen_secret(rng)
        t = scheme.params.t
        m1 = rng.integers(0, t, size=scheme.params.n)
        m2 = rng.integers(0, t, size=scheme.params.n)
        out = scheme.decrypt(
            sk, scheme.add(scheme.encrypt(sk, m1, rng), scheme.encrypt(sk, m2, rng))
        )
        assert np.array_equal(out, (m1 + m2) % t)

    def test_subtraction(self, scheme):
        rng = seeded_rng(5)
        sk = scheme.gen_secret(rng)
        t = scheme.params.t
        m1 = rng.integers(0, t, size=scheme.params.n)
        m2 = rng.integers(0, t, size=scheme.params.n)
        out = scheme.decrypt(
            sk, scheme.sub(scheme.encrypt(sk, m1, rng), scheme.encrypt(sk, m2, rng))
        )
        assert np.array_equal(out, (m1 - m2) % t)

    def test_plaintext_multiply_matches_negacyclic_product(self, scheme):
        rng = seeded_rng(6)
        sk = scheme.gen_secret(rng)
        t = scheme.params.t
        msg = rng.integers(0, 50, size=scheme.params.n)
        plain = rng.integers(-4, 5, size=scheme.params.n)
        ct = scheme.mul_plain(scheme.encrypt(sk, msg, rng), plain)
        got = scheme.decrypt(sk, ct)
        want = negacyclic_convolve_reference(
            msg.astype(np.uint64),
            np.array([x % t for x in plain], dtype=np.uint64),
            t,
        )
        assert np.array_equal(got.astype(np.uint64), want)

    def test_scalar_multiply(self, scheme):
        rng = seeded_rng(7)
        sk = scheme.gen_secret(rng)
        t = scheme.params.t
        msg = rng.integers(0, t, size=scheme.params.n)
        out = scheme.decrypt(sk, scheme.mul_scalar(scheme.encrypt(sk, msg, rng), 3))
        assert np.array_equal(out, (3 * msg) % t)

    def test_add_plain(self, scheme):
        rng = seeded_rng(8)
        sk = scheme.gen_secret(rng)
        t = scheme.params.t
        m1 = rng.integers(0, t, size=scheme.params.n)
        m2 = rng.integers(0, t, size=scheme.params.n)
        ct = scheme.add_plain_encoded(scheme.encrypt(sk, m1, rng), scheme.encode(m2))
        assert np.array_equal(scheme.decrypt(sk, ct), (m1 + m2) % t)

    def test_zero_ciphertext_is_additive_identity(self, scheme):
        rng = seeded_rng(9)
        sk = scheme.gen_secret(rng)
        msg = rng.integers(0, scheme.params.t, size=scheme.params.n)
        ct = scheme.add(scheme.encrypt(sk, msg, rng), scheme.zero_ciphertext())
        assert np.array_equal(scheme.decrypt(sk, ct), msg)


class TestSlotBatching:
    def test_slot_round_trip(self, scheme):
        rng = seeded_rng(10)
        vals = rng.integers(0, scheme.params.t, size=scheme.params.n)
        assert np.array_equal(
            scheme.decode_slots(scheme.encode_slots(vals)), vals
        )

    def test_plain_multiply_acts_slotwise(self, scheme):
        rng = seeded_rng(11)
        sk = scheme.gen_secret(rng)
        t = scheme.params.t
        v1 = rng.integers(0, 100, size=scheme.params.n)
        v2 = rng.integers(0, 100, size=scheme.params.n)
        ct = scheme.encrypt(sk, scheme.encode_slots(v1), rng)
        ct = scheme.mul_plain(ct, scheme.encode_slots(v2))
        got = scheme.decrypt_slots(sk, ct)
        assert np.array_equal(got, (v1 * v2) % t)

    def test_batching_unavailable_for_power_of_two_t(self):
        bad = BfvScheme(
            BfvParams.create(n=64, t=1 << 16, prime_bits=30, num_primes=2)
        )
        assert not bad.params.supports_batching()
        with pytest.raises(ValueError):
            bad.encode_slots(np.array([1]))


class TestSecurityShape:
    def test_ciphertext_size_is_message_independent(self, scheme):
        rng = seeded_rng(12)
        sk = scheme.gen_secret(rng)
        c1 = scheme.encrypt(sk, np.zeros(scheme.params.n, dtype=int), rng)
        c2 = scheme.encrypt(
            sk, np.full(scheme.params.n, scheme.params.t - 1), rng
        )
        assert c1.wire_bytes() == c2.wire_bytes()
        assert c1.wire_bytes() == scheme.params.ciphertext_bytes()

    def test_fresh_ciphertexts_differ(self, scheme):
        rng = seeded_rng(13)
        sk = scheme.gen_secret(rng)
        msg = np.ones(scheme.params.n, dtype=int)
        c1, c2 = (scheme.encrypt(sk, msg, rng) for _ in range(2))
        assert not np.array_equal(c1.b, c2.b)
