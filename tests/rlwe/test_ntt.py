"""Tests for the negacyclic NTT."""

import numpy as np
import pytest

from repro.rlwe import ntt


class TestPrimeSearch:
    def test_finds_ntt_friendly_primes(self):
        primes = ntt.find_ntt_primes(64, 30, 3)
        assert len(primes) == 3
        for p in primes:
            assert ntt.is_prime(p)
            assert (p - 1) % 128 == 0
            assert p < 2**30

    def test_rejects_oversized_request(self):
        with pytest.raises(ValueError):
            ntt.find_ntt_primes(64, 40, 1)

    def test_is_prime_basics(self):
        assert ntt.is_prime(2)
        assert ntt.is_prime(65537)
        assert not ntt.is_prime(1)
        assert not ntt.is_prime(65536)
        assert ntt.is_prime(4294967291)


@pytest.fixture(scope="module")
def ctx():
    (p,) = ntt.find_ntt_primes(64, 30, 1)
    return ntt.NttContext(64, p)


class TestRegistry:
    def test_same_key_returns_the_same_context(self):
        (p,) = ntt.find_ntt_primes(64, 30, 1)
        assert ntt.ntt_context(64, p) is ntt.ntt_context(64, p)

    def test_distinct_keys_get_distinct_contexts(self):
        p, q = ntt.find_ntt_primes(64, 30, 2)
        assert ntt.ntt_context(64, p) is not ntt.ntt_context(64, q)

    def test_registry_context_matches_fresh_construction(self):
        """The cached tables are bit-identical to a direct build."""
        (p,) = ntt.find_ntt_primes(128, 30, 1)
        cached = ntt.ntt_context(128, p)
        fresh = ntt.NttContext(128, p)
        rng = np.random.default_rng(0)
        poly = rng.integers(0, p, size=128, dtype=np.int64)
        np.testing.assert_array_equal(
            cached.forward(poly), fresh.forward(poly)
        )
        np.testing.assert_array_equal(
            cached.inverse(cached.forward(poly)), poly
        )

    def test_clear_resets_the_registry(self):
        (p,) = ntt.find_ntt_primes(64, 30, 1)
        before = ntt.ntt_context(64, p)
        ntt.clear_ntt_registry()
        after = ntt.ntt_context(64, p)
        assert before is not after

    def test_concurrent_lookup_yields_one_context(self):
        import threading

        ntt.clear_ntt_registry()
        (p,) = ntt.find_ntt_primes(64, 30, 1)
        got = []
        barrier = threading.Barrier(8)

        def lookup():
            barrier.wait()
            got.append(ntt.ntt_context(64, p))

        threads = [threading.Thread(target=lookup) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in got}) == 1

    def test_bit_reverse_permutation_is_shared_and_frozen(self):
        perm = ntt._bit_reverse_permutation(64)
        assert perm is ntt._bit_reverse_permutation(64)
        assert not perm.flags.writeable
        with pytest.raises(ValueError):
            perm[0] = 1

    def test_power_table_matches_pow(self):
        (p,) = ntt.find_ntt_primes(64, 30, 1)
        base = 3
        table = ntt._power_table(base, 64, p)
        expected = np.array(
            [pow(base, i, p) for i in range(64)], dtype=np.int64
        )
        np.testing.assert_array_equal(table, expected)


class TestTransform:
    def test_forward_inverse_roundtrip(self, ctx):
        rng = np.random.default_rng(0)
        a = rng.integers(0, ctx.p, size=ctx.n, dtype=np.uint64)
        assert np.array_equal(ctx.inverse(ctx.forward(a)), a)

    def test_roundtrip_batched(self, ctx):
        rng = np.random.default_rng(1)
        a = rng.integers(0, ctx.p, size=(5, ctx.n), dtype=np.uint64)
        assert np.array_equal(ctx.inverse(ctx.forward(a)), a)

    def test_transform_is_linear(self, ctx):
        rng = np.random.default_rng(2)
        a = rng.integers(0, ctx.p, size=ctx.n, dtype=np.uint64)
        b = rng.integers(0, ctx.p, size=ctx.n, dtype=np.uint64)
        lhs = ctx.forward((a + b) % np.uint64(ctx.p))
        rhs = (ctx.forward(a) + ctx.forward(b)) % np.uint64(ctx.p)
        assert np.array_equal(lhs, rhs)

    def test_multiply_matches_schoolbook(self, ctx):
        rng = np.random.default_rng(3)
        a = rng.integers(0, ctx.p, size=ctx.n, dtype=np.uint64)
        b = rng.integers(0, ctx.p, size=ctx.n, dtype=np.uint64)
        got = ctx.negacyclic_multiply(a, b)
        want = ntt.negacyclic_convolve_reference(a, b, ctx.p)
        assert np.array_equal(got, want)

    def test_multiply_by_x_shifts_and_negates(self, ctx):
        # x * x^(n-1) = x^n = -1 in the negacyclic ring.
        x = np.zeros(ctx.n, dtype=np.uint64)
        x[1] = 1
        top = np.zeros(ctx.n, dtype=np.uint64)
        top[ctx.n - 1] = 1
        got = ctx.negacyclic_multiply(x, top)
        want = np.zeros(ctx.n, dtype=np.uint64)
        want[0] = ctx.p - 1
        assert np.array_equal(got, want)

    def test_does_not_mutate_input(self, ctx):
        rng = np.random.default_rng(4)
        a = rng.integers(0, ctx.p, size=ctx.n, dtype=np.uint64)
        before = a.copy()
        ctx.forward(a)
        assert np.array_equal(a, before)


class TestValidation:
    def test_non_power_of_two_dimension(self):
        with pytest.raises(ValueError):
            ntt.NttContext(48, 65537)

    def test_prime_without_root(self):
        with pytest.raises(ValueError):
            ntt.NttContext(64, 97)  # 96 not divisible by 128

    def test_composite_modulus(self):
        with pytest.raises(ValueError):
            ntt.NttContext(64, 128 * 100 + 1)  # 12801 = 3 * 17 * 251
