"""The transport seam: loopback, retry policy, service lifecycle,
and the thread-safety of the traffic log."""

import threading

import pytest

from repro.net.rpc import RpcChannel, ServiceEndpoint, frame, unframe
from repro.net.service import Service
from repro.net.transport import (
    LoopbackTransport,
    RetryPolicy,
    RetryingTransport,
    RemoteCallError,
    TrafficLog,
    Transport,
    TransportError,
    TransportExhausted,
    TransportTimeout,
)


def echo_endpoint(name="echo"):
    ep = ServiceEndpoint(name)
    ep.register("upper", lambda b: b.upper())
    return ep


class TestLoopback:
    def test_routes_by_service_name(self):
        transport = LoopbackTransport({"echo": echo_endpoint()})
        response = transport.request("echo", frame("upper", b"hi"))
        assert unframe(response) == ("upper", b"HI")

    def test_unknown_service_raises(self):
        transport = LoopbackTransport({"echo": echo_endpoint()})
        with pytest.raises(TransportError, match="no such service"):
            transport.request("nope", b"")

    def test_satisfies_the_protocol(self):
        assert isinstance(LoopbackTransport({}), Transport)

    def test_is_bit_identical_to_direct_dispatch(self):
        ep = echo_endpoint()
        transport = LoopbackTransport({"echo": ep})
        request = frame("upper", b"payload")
        assert transport.request("echo", request) == ep.dispatch(request)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_then_caps(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_backoff_s=0.1,
            backoff_multiplier=2.0,
            max_backoff_s=0.5,
        )
        waits = [policy.backoff(k) for k in range(4)]
        assert waits == [0.1, 0.2, 0.4, 0.5]  # capped at max_backoff_s

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff(-1)


class FailNTimes:
    """A transport that fails transiently N times, then succeeds."""

    def __init__(self, failures, exc=TransportTimeout):
        self.failures = failures
        self.exc = exc
        self.attempts = 0

    def request(self, service, request, *, timeout=None):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise self.exc("transient")
        return frame("m", b"ok")

    def close(self):
        pass


class TestRetryingTransport:
    def test_retries_then_succeeds(self):
        inner = FailNTimes(2)
        sleeps = []
        transport = RetryingTransport(
            inner, RetryPolicy(max_attempts=3), sleep=sleeps.append
        )
        assert transport.request("svc", b"req") == frame("m", b"ok")
        assert inner.attempts == 3
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0]  # backoff grew

    def test_attempts_are_bounded(self):
        inner = FailNTimes(100)
        transport = RetryingTransport(
            inner, RetryPolicy(max_attempts=3), sleep=lambda s: None
        )
        with pytest.raises(TransportExhausted, match="3 attempts"):
            transport.request("svc", b"req")
        assert inner.attempts == 3

    def test_application_errors_are_not_retried(self):
        inner = FailNTimes(100, exc=RemoteCallError)
        transport = RetryingTransport(
            inner, RetryPolicy(max_attempts=5), sleep=lambda s: None
        )
        with pytest.raises(RemoteCallError):
            transport.request("svc", b"req")
        assert inner.attempts == 1


class TestServiceLifecycle:
    def test_endpoint_is_built_lazily_and_cached(self):
        class Echo(Service):
            service_name = "echo"
            built = 0

            def register_endpoint(self, endpoint):
                type(self).built += 1
                endpoint.register("upper", lambda b: b.upper())

        service = Echo()
        assert service.endpoint is service.endpoint
        assert Echo.built == 1
        assert service.endpoint.name == "echo"

    def test_default_health_and_context_manager(self):
        class Noop(Service):
            service_name = "noop"

            def register_endpoint(self, endpoint):
                pass

        with Noop() as service:
            assert service.health() == {"service": "noop", "status": "ok"}

    def test_register_endpoint_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Service().endpoint


class TestChannelTimeoutForwarding:
    def test_timeout_reaches_the_transport(self):
        seen = {}

        class Probe:
            def request(self, service, request, *, timeout=None):
                seen["timeout"] = timeout
                return frame("m", b"")

            def close(self):
                pass

        channel = RpcChannel(TrafficLog(), Probe())
        channel.call("svc", "phase", "m", b"", timeout=1.25)
        assert seen["timeout"] == 1.25


class TestTrafficLogThreadSafety:
    def test_concurrent_records_are_all_kept(self):
        log = TrafficLog()
        per_thread, num_threads = 200, 8

        def hammer():
            for _ in range(per_thread):
                log.record("ranking", "up", 3)
                log.record("ranking", "down", 5)

        threads = [
            threading.Thread(target=hammer) for _ in range(num_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = per_thread * num_threads
        assert log.bytes_up("ranking") == 3 * total
        assert log.bytes_down("ranking") == 5 * total
        assert len(log.message_sizes("ranking", "up")) == total

    def test_reads_during_writes_do_not_crash(self):
        log = TrafficLog()
        stop = threading.Event()
        errors = []

        def writer():
            while not stop.is_set():
                log.record("p", "up", 1)

        def reader():
            try:
                while not stop.is_set():
                    log.total_bytes()
                    log.phases()
                    log.phase_summary()
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        stop_timer = threading.Timer(0.2, stop.set)
        stop_timer.start()
        for t in threads:
            t.join(timeout=5.0)
        stop_timer.cancel()
        assert not errors
