"""Tests for wire serialization and byte-accounting honesty."""

import numpy as np
import pytest

from repro.lwe import LweParams, RegevScheme
from repro.lwe.sampling import seeded_rng
from repro.net import wire
from repro.rlwe import BfvParams, BfvScheme


@pytest.fixture(scope="module")
def regev_ct():
    params = LweParams(n=32, q_bits=64, p=256, sigma=6.4, m=20)
    scheme = RegevScheme(params=params, a_seed=b"Z" * 32)
    rng = seeded_rng(0)
    sk = scheme.gen_secret(rng)
    return scheme, sk, scheme.encrypt(sk, np.arange(20) % 256, rng)


class TestInnerCiphertext:
    def test_round_trip(self, regev_ct):
        scheme, sk, ct = regev_ct
        blob = wire.encode_ciphertext(ct)
        back = wire.decode_ciphertext(blob, scheme.params)
        assert np.array_equal(back.c, ct.c)

    def test_declared_size_matches_encoding(self, regev_ct):
        _, _, ct = regev_ct
        blob = wire.encode_ciphertext(ct)
        assert len(blob) == ct.upload_bytes + wire.HEADER_BYTES

    def test_modulus_mismatch_rejected(self, regev_ct):
        scheme, _, ct = regev_ct
        blob = wire.encode_ciphertext(ct)
        other = LweParams(n=32, q_bits=32, p=256, sigma=6.4, m=20)
        with pytest.raises(ValueError):
            wire.decode_ciphertext(blob, other)

    def test_decoded_ciphertext_still_decrypts(self, regev_ct):
        scheme, sk, ct = regev_ct
        back = wire.decode_ciphertext(
            wire.encode_ciphertext(ct), scheme.params
        )
        eye = np.eye(scheme.params.m, dtype=np.int64)
        out = scheme.decrypt(sk, scheme.preprocess(eye), scheme.apply(eye, back))
        assert np.array_equal(out, np.arange(20) % 256)


class TestAnswer:
    @pytest.mark.parametrize("q_bits", [32, 64])
    def test_round_trip(self, q_bits):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 2**31, size=50).astype(
            np.uint32 if q_bits == 32 else np.uint64
        )
        back, got_bits = wire.decode_answer(wire.encode_answer(values, q_bits))
        assert got_bits == q_bits
        assert np.array_equal(back, values)

    def test_size_matches_accounting(self):
        values = np.zeros(10, dtype=np.uint64)
        blob = wire.encode_answer(values, 64)
        assert len(blob) == 10 * 8 + wire.HEADER_BYTES


class TestRlwe:
    def test_round_trip_and_size(self):
        scheme = BfvScheme(BfvParams.create(n=32, t=65537, num_primes=2))
        rng = seeded_rng(2)
        sk = scheme.gen_secret(rng)
        ct = scheme.encrypt(sk, np.arange(32), rng)
        blob = wire.encode_rlwe(ct)
        assert len(blob) == ct.wire_bytes() + wire.RLWE_HEADER_BYTES
        back = wire.decode_rlwe(blob)
        assert np.array_equal(scheme.decrypt(sk, back), np.arange(32))
