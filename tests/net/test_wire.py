"""Tests for wire serialization and byte-accounting honesty."""

import numpy as np
import pytest

from repro.lwe import LweParams, RegevScheme
from repro.lwe.sampling import seeded_rng
from repro.net import wire
from repro.rlwe import BfvParams, BfvScheme


@pytest.fixture(scope="module")
def regev_ct():
    params = LweParams(n=32, q_bits=64, p=256, sigma=6.4, m=20)
    scheme = RegevScheme(params=params, a_seed=b"Z" * 32)
    rng = seeded_rng(0)
    sk = scheme.gen_secret(rng)
    return scheme, sk, scheme.encrypt(sk, np.arange(20) % 256, rng)


class TestInnerCiphertext:
    def test_round_trip(self, regev_ct):
        scheme, sk, ct = regev_ct
        blob = wire.encode_ciphertext(ct)
        back = wire.decode_ciphertext(blob, scheme.params)
        assert np.array_equal(back.c, ct.c)

    def test_declared_size_matches_encoding(self, regev_ct):
        _, _, ct = regev_ct
        blob = wire.encode_ciphertext(ct)
        assert len(blob) == ct.upload_bytes + wire.HEADER_BYTES

    def test_modulus_mismatch_rejected(self, regev_ct):
        scheme, _, ct = regev_ct
        blob = wire.encode_ciphertext(ct)
        other = LweParams(n=32, q_bits=32, p=256, sigma=6.4, m=20)
        with pytest.raises(ValueError):
            wire.decode_ciphertext(blob, other)

    def test_decoded_ciphertext_still_decrypts(self, regev_ct):
        scheme, sk, ct = regev_ct
        back = wire.decode_ciphertext(
            wire.encode_ciphertext(ct), scheme.params
        )
        eye = np.eye(scheme.params.m, dtype=np.int64)
        out = scheme.decrypt(sk, scheme.preprocess(eye), scheme.apply(eye, back))
        assert np.array_equal(out, np.arange(20) % 256)


class TestAnswer:
    @pytest.mark.parametrize("q_bits", [32, 64])
    def test_round_trip(self, q_bits):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 2**31, size=50).astype(
            np.uint32 if q_bits == 32 else np.uint64
        )
        back, got_bits = wire.decode_answer(wire.encode_answer(values, q_bits))
        assert got_bits == q_bits
        assert np.array_equal(back, values)

    def test_size_matches_accounting(self):
        values = np.zeros(10, dtype=np.uint64)
        blob = wire.encode_answer(values, 64)
        assert len(blob) == 10 * 8 + wire.HEADER_BYTES


class TestRlwe:
    def test_round_trip_and_size(self):
        scheme = BfvScheme(BfvParams.create(n=32, t=65537, num_primes=2))
        rng = seeded_rng(2)
        sk = scheme.gen_secret(rng)
        ct = scheme.encrypt(sk, np.arange(32), rng)
        blob = wire.encode_rlwe(ct)
        assert len(blob) == ct.wire_bytes() + wire.RLWE_HEADER_BYTES
        back = wire.decode_rlwe(blob)
        assert np.array_equal(scheme.decrypt(sk, back), np.arange(32))


class TestTruncationHardening:
    """Malformed blobs fail with a clear size message, never a numpy
    reshape traceback, and decoders hand back writable arrays."""

    def test_ciphertext_truncated_header(self, regev_ct):
        scheme, _, _ = regev_ct
        with pytest.raises(ValueError, match="expected at least"):
            wire.decode_ciphertext(b"\x01", scheme.params)

    def test_ciphertext_truncated_body_names_both_sizes(self, regev_ct):
        scheme, _, ct = regev_ct
        blob = wire.encode_ciphertext(ct)
        with pytest.raises(ValueError, match=r"payload is .* expected"):
            wire.decode_ciphertext(blob[:-3], scheme.params)

    def test_answer_truncated_and_bad_modulus(self):
        blob = wire.encode_answer(np.zeros(4, dtype=np.uint64), 64)
        with pytest.raises(ValueError, match="expected"):
            wire.decode_answer(blob[:-1])
        with pytest.raises(ValueError, match="modulus"):
            wire.decode_answer(b"\x07" + blob[1:])

    def test_matrix_truncated(self):
        blob = wire.encode_matrix(np.arange(12, dtype=np.uint64).reshape(3, 4), 64)
        with pytest.raises(ValueError, match="expected"):
            wire.decode_matrix(blob[: len(blob) - 8])

    def test_rlwe_truncated(self):
        from repro.rlwe import BfvParams, BfvScheme

        scheme = BfvScheme(BfvParams.create(n=32, t=65537, num_primes=2))
        rng = seeded_rng(5)
        ct = scheme.encrypt(scheme.gen_secret(rng), np.arange(32), rng)
        blob = wire.encode_rlwe(ct)
        with pytest.raises(ValueError, match="expected"):
            wire.decode_rlwe(blob[:-5])

    def test_decoded_arrays_are_writable(self, regev_ct):
        scheme, _, ct = regev_ct
        back = wire.decode_ciphertext(
            wire.encode_ciphertext(ct), scheme.params
        )
        back.c[0] += 1  # must not raise "read-only"
        values, _ = wire.decode_answer(
            wire.encode_answer(np.zeros(4, dtype=np.uint64), 64)
        )
        values[0] = 9


class TestQueryBatch:
    """Stacked query/answer batch codecs for the batch plane."""

    def _batch(self, regev_ct, count=3):
        from repro.core.ranking import RankingBatch, RankingQuery

        scheme, sk, _ = regev_ct
        rng = seeded_rng(11)
        queries = [
            RankingQuery(
                ciphertext=scheme.encrypt(sk, np.arange(20) % 256, rng)
            )
            for _ in range(count)
        ]
        return RankingBatch.from_queries(queries)

    def test_round_trip(self, regev_ct):
        scheme, _, _ = regev_ct
        batch = self._batch(regev_ct)
        back = wire.decode_batch(wire.encode_batch(batch), scheme.params)
        assert np.array_equal(back.stacked, batch.stacked)
        assert back.size == batch.size

    def test_declared_size_matches_encoding(self, regev_ct):
        batch = self._batch(regev_ct)
        blob = wire.encode_batch(batch)
        assert len(blob) == batch.wire_bytes() + wire._BATCH_HEADER.size

    def test_modulus_mismatch_rejected(self, regev_ct):
        batch = self._batch(regev_ct)
        other = LweParams(n=32, q_bits=32, p=256, sigma=6.4, m=20)
        with pytest.raises(ValueError, match="modulus"):
            wire.decode_batch(wire.encode_batch(batch), other)

    def test_truncated_batch_rejected(self, regev_ct):
        scheme, _, _ = regev_ct
        blob = wire.encode_batch(self._batch(regev_ct))
        with pytest.raises(ValueError, match="expected"):
            wire.decode_batch(blob[:-4], scheme.params)
        with pytest.raises(ValueError, match="expected at least"):
            wire.decode_batch(b"\x40", scheme.params)

    def test_zero_query_batch_rejected(self, regev_ct):
        scheme, _, _ = regev_ct
        blob = wire._BATCH_HEADER.pack(scheme.params.q_bits, 20, 0)
        with pytest.raises(ValueError, match="zero queries"):
            wire.decode_batch(blob, scheme.params)


class TestBatchAnswer:
    def _answer(self, q_bits=64, rows=6, count=3):
        from repro.core.ranking import RankingBatchAnswer

        rng = np.random.default_rng(12)
        stacked = rng.integers(0, 2**31, size=(rows, count)).astype(
            np.uint32 if q_bits == 32 else np.uint64
        )
        return RankingBatchAnswer(stacked=stacked, bytes_per_element=q_bits // 8)

    @pytest.mark.parametrize("q_bits", [32, 64])
    def test_round_trip(self, q_bits):
        answer = self._answer(q_bits)
        blob = wire.encode_batch_answer(answer, q_bits)
        back, got_bits = wire.decode_batch_answer(blob)
        assert got_bits == q_bits
        assert np.array_equal(back, answer.stacked)

    def test_size_matches_accounting(self):
        answer = self._answer(64)
        blob = wire.encode_batch_answer(answer, 64)
        assert len(blob) == answer.wire_bytes() + wire._BATCH_HEADER.size

    def test_truncated_and_bad_modulus_rejected(self):
        blob = wire.encode_batch_answer(self._answer(64), 64)
        with pytest.raises(ValueError, match="expected"):
            wire.decode_batch_answer(blob[:-1])
        with pytest.raises(ValueError, match="modulus"):
            wire.decode_batch_answer(b"\x07" + blob[1:])

    def test_zero_query_answer_rejected(self):
        blob = wire._BATCH_HEADER.pack(64, 6, 0)
        with pytest.raises(ValueError, match="zero queries"):
            wire.decode_batch_answer(blob)

    def test_split_columns_are_the_queries_answers(self):
        answer = self._answer(64, rows=4, count=3)
        parts = answer.split()
        assert len(parts) == 3
        for i, part in enumerate(parts):
            assert np.array_equal(part.values, answer.stacked[:, i])
