"""Tests for traffic logging and the latency model."""

import pytest

from repro.core.costs import CostLedger, PAPER_WORD_OPS_PER_CORE_SECOND
from repro.net import LinkModel, TrafficLog


class TestLinkModel:
    def test_transfer_time_scales_with_bytes(self):
        link = LinkModel(bandwidth_mbps=100, rtt_ms=50)
        assert link.transfer_seconds(100 * 1e6 / 8) == pytest.approx(1.0)

    def test_round_trip_includes_rtt(self):
        link = LinkModel(bandwidth_mbps=100, rtt_ms=50)
        assert link.round_trip_seconds(0, 0) == pytest.approx(0.05)

    def test_paper_link_defaults(self):
        link = LinkModel()
        assert link.bandwidth_mbps == 100.0
        assert link.rtt_ms == 50.0


class TestTrafficLog:
    def test_per_phase_accounting(self):
        log = TrafficLog()
        log.record("token", "up", 100)
        log.record("token", "down", 50)
        log.record("ranking", "up", 10)
        assert log.bytes_up("token") == 100
        assert log.bytes_down("token") == 50
        assert log.bytes_up() == 110
        assert log.total_bytes() == 160
        assert log.phases() == ["token", "ranking"]
        assert log.phase_summary() == {"token": (100, 50), "ranking": (10, 0)}

    def test_message_sizes_listing(self):
        log = TrafficLog()
        log.record("ranking", "up", 10)
        log.record("ranking", "up", 10)
        assert log.message_sizes("ranking", "up") == [10, 10]
        assert log.message_sizes("ranking", "down") == []

    def test_validation(self):
        log = TrafficLog()
        with pytest.raises(ValueError):
            log.record("x", "sideways", 1)
        with pytest.raises(ValueError):
            log.record("x", "up", -1)

    def test_simulated_latency_sums_selected_phases(self):
        log = TrafficLog()
        log.record("token", "up", 0)
        log.record("ranking", "up", 0)
        link = LinkModel(bandwidth_mbps=100, rtt_ms=50)
        assert log.simulated_latency(link) == pytest.approx(0.1)
        assert log.simulated_latency(link, ["ranking"]) == pytest.approx(0.05)


class TestCostLedger:
    def test_accumulation_and_merge(self):
        a = CostLedger()
        a.add("ranking", 100)
        a.add("ranking", 50)
        b = CostLedger()
        b.add("url", 10)
        a.merge(b)
        assert a.total_ops("ranking") == 150
        assert a.total_ops() == 160

    def test_core_seconds_conversion(self):
        ledger = CostLedger()
        ledger.add("ranking", int(PAPER_WORD_OPS_PER_CORE_SECOND))
        assert ledger.core_seconds() == pytest.approx(1.0)

    def test_validation(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.add("x", -1)
        with pytest.raises(ValueError):
            ledger.core_seconds(ops_per_core_second=0)
