"""Tests for the RPC layer and the token wire format."""

import numpy as np
import pytest

from repro.net import wire
from repro.net.rpc import (
    FRAME_BYTES,
    MAX_METHOD_BYTES,
    RpcChannel,
    ServiceEndpoint,
    frame,
    unframe,
)
from repro.net.transport import LoopbackTransport, TrafficLog


class TestFraming:
    def test_round_trip(self):
        method, payload = unframe(frame("answer", b"\x01\x02"))
        assert method == "answer" and payload == b"\x01\x02"

    def test_truncated_frame_rejected(self):
        blob = frame("answer", b"\x01\x02\x03")
        with pytest.raises(ValueError):
            unframe(blob[:-1])

    def test_header_shorter_than_fixed_fields_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            unframe(b"\x00" * (FRAME_BYTES - 1))

    def test_oversized_method_name_raises(self):
        """Regression: frame() used to silently truncate to 16 bytes,
        so two distinct long method names could alias on the wire."""
        with pytest.raises(ValueError, match="16"):
            frame("a" * (MAX_METHOD_BYTES + 1), b"")

    def test_max_length_method_name_round_trips(self):
        name = "m" * MAX_METHOD_BYTES
        method, payload = unframe(frame(name, b"xy"))
        assert method == name and payload == b"xy"

    def test_non_ascii_method_counted_in_bytes(self):
        # 9 chars but 18 UTF-8 bytes: the byte length is what must fit.
        with pytest.raises(ValueError):
            frame("é" * 9, b"")

    def test_trailing_garbage_rejected(self):
        """Regression: unframe() used to ignore bytes past the declared
        payload length, silently accepting corrupted frames."""
        blob = frame("answer", b"\x01\x02") + b"\x99"
        with pytest.raises(ValueError, match="trailing"):
            unframe(blob)


class TestEndpoint:
    def test_dispatch(self):
        ep = ServiceEndpoint("echo")
        ep.register("upper", lambda b: b.upper())
        method, body = unframe(ep.dispatch(frame("upper", b"abc")))
        assert (method, body) == ("upper", b"ABC")

    def test_unknown_method(self):
        ep = ServiceEndpoint("x")
        with pytest.raises(KeyError):
            ep.dispatch(frame("nope", b""))

    def test_duplicate_registration(self):
        ep = ServiceEndpoint("x")
        ep.register("m", lambda b: b)
        with pytest.raises(ValueError):
            ep.register("m", lambda b: b)


class TestChannel:
    def test_logs_real_wire_sizes(self):
        ep = ServiceEndpoint("svc")
        ep.register("m", lambda b: b * 2)
        log = TrafficLog()
        channel = RpcChannel(log, LoopbackTransport({"svc": ep}))
        out = channel.call("svc", "phase", "m", b"1234")
        assert out == b"12341234"
        assert log.bytes_up("phase") == 4 + FRAME_BYTES
        assert log.bytes_down("phase") == 8 + FRAME_BYTES


class TestTokenWire:
    def test_mint_request_round_trip_with_shared_key(self, engine):
        from repro.homenc.token import make_client_keys

        schemes = {
            "ranking": engine.index.ranking_scheme,
            "url": engine.index.url_scheme,
        }
        _, enc_keys, upload = make_client_keys(
            schemes, np.random.default_rng(0)
        )
        blob = wire.encode_mint_request(enc_keys)
        back = wire.decode_mint_request(blob)
        assert set(back) == {"ranking", "url"}
        assert np.array_equal(back["ranking"].z_b, enc_keys["ranking"].z_b)
        # Shared keys encoded once: the request is barely larger than
        # one key upload.
        assert len(blob) < upload * 1.01 + 100

    def test_token_payload_round_trip(self, engine):
        token_payload_bytes_before = None
        from repro.homenc.token import make_client_keys

        schemes = {
            "ranking": engine.index.ranking_scheme,
            "url": engine.index.url_scheme,
        }
        keys, enc_keys, _ = make_client_keys(schemes, np.random.default_rng(1))
        minted = engine.index.token_factory.mint(enc_keys)
        blob = wire.encode_token_payload(minted)
        back = wire.decode_token_payload(blob)
        for name in ("ranking", "url"):
            product_direct = schemes[name].decrypt_hint_product(
                keys[name], minted.hints[name]
            )
            product_wire = schemes[name].decrypt_hint_product(
                keys[name], back.hints[name]
            )
            assert np.array_equal(product_direct, product_wire)

    def test_search_traffic_uses_real_encodings(self, engine, corpus):
        result = engine.search(
            corpus.documents[2].text, np.random.default_rng(2)
        )
        inner = engine.index.ranking_scheme.params.inner
        expected_up = (
            inner.ciphertext_bytes(inner.m) + wire.HEADER_BYTES + FRAME_BYTES
        )
        assert result.traffic.bytes_up("ranking") == expected_up
