"""Fault injection: a flaky transport that drops, delays, and
duplicates responses, and proof that the retry layer rides it out
without changing a single result bit."""

import numpy as np
import pytest

from repro import TiptoeEngine
from repro.net.rpc import frame, unframe
from repro.net.tcp import STATUS_OK, SocketTransport
from repro.net.transport import (
    LoopbackTransport,
    RetryPolicy,
    RetryingTransport,
    TransportConnectionLost,
    TransportExhausted,
    TransportTimeout,
)

DROP = "drop"  # response never arrives -> timeout
LOST = "lost"  # connection dies mid-call
OK = "ok"


class FlakyTransport:
    """Wraps a real transport; misbehaves per a scripted fault plan.

    ``faults`` is consumed one entry per request; once exhausted every
    call succeeds.  The wrapped transport still *serves* dropped
    requests (the server did the work; only the response is lost),
    mirroring how a real network failure interleaves with retries.
    """

    def __init__(self, inner, faults=()):
        self.inner = inner
        self.faults = list(faults)
        self.calls = 0

    def request(self, service, request, *, timeout=None):
        self.calls += 1
        fault = self.faults.pop(0) if self.faults else OK
        response = self.inner.request(service, request, timeout=timeout)
        if fault == DROP:
            raise TransportTimeout("injected: response dropped")
        if fault == LOST:
            raise TransportConnectionLost("injected: connection reset")
        return response

    def close(self):
        self.inner.close()


def flaky_engine(engine, faults, sleeps=None):
    """A remote-mode engine whose transport is the session engine's
    loopback wrapped in the fault injector + retry layer."""
    inner = LoopbackTransport(
        {name: svc.endpoint for name, svc in engine.services.items()}
    )
    transport = RetryingTransport(
        FlakyTransport(inner, faults),
        RetryPolicy(max_attempts=4, base_backoff_s=0.01, max_backoff_s=0.1),
        sleep=(sleeps.append if sleeps is not None else lambda s: None),
    )
    return TiptoeEngine(engine.index, transport=transport)


class TestRetriesUnderFaults:
    def test_search_survives_drops_and_resets(self, engine):
        remote = flaky_engine(engine, [DROP, LOST, OK, DROP])
        result = remote.search("alpha beta", rng=np.random.default_rng(7))
        assert result.results  # it completed despite 3 injected faults

    def test_results_bit_identical_to_clean_loopback(self, engine):
        """Retries resend the same ciphertext, so a flaky network must
        not perturb scores, ranks, or traffic *payloads*."""
        text = "gamma delta epsilon"
        clean = engine.search(text, rng=np.random.default_rng(99))
        remote = flaky_engine(engine, [OK, DROP, DROP, LOST])
        flaky = remote.search(text, rng=np.random.default_rng(99))
        assert flaky.cluster == clean.cluster
        assert [r.position for r in flaky.results] == [
            r.position for r in clean.results
        ]
        np.testing.assert_array_equal(
            np.array([r.score for r in flaky.results]),
            np.array([r.score for r in clean.results]),
        )
        assert [r.url for r in flaky.results] == [
            r.url for r in clean.results
        ]

    def test_backoff_grows_between_attempts(self, engine):
        sleeps = []
        remote = flaky_engine(engine, [DROP, DROP], sleeps=sleeps)
        remote.search("zeta", rng=np.random.default_rng(3))
        assert len(sleeps) >= 2
        assert sleeps[1] > sleeps[0]

    def test_retries_are_bounded(self, engine):
        remote = flaky_engine(engine, [DROP] * 50)
        with pytest.raises(TransportExhausted, match="4 attempts"):
            remote.search("eta theta", rng=np.random.default_rng(5))
        flaky = remote.transport.inner
        assert flaky.calls <= 4  # the first failing call, retried 3x


class DuplicatingConnection:
    """Delivers every response twice, the duplicate first -- as a
    resend-happy network would after the client already moved on."""

    def __init__(self, endpoint):
        self.endpoint = endpoint
        self.queue = []
        self.last = None

    def send_frame(self, request_id, service, status, payload):
        response = self.endpoint.dispatch(payload)
        if self.last is not None:
            self.queue.append(self.last)  # stale duplicate of prior reply
        self.queue.append((request_id, service, STATUS_OK, response))
        self.last = (request_id, service, STATUS_OK, response)

    def recv_frame(self, timeout=None):
        return self.queue.pop(0)

    def close(self):
        pass


class TestDuplicateDelivery:
    def test_duplicated_responses_never_cross_requests(self):
        from repro.net.rpc import ServiceEndpoint

        calls = []

        def record(payload):
            calls.append(payload)
            return payload + b"!"

        ep = ServiceEndpoint("svc")
        ep.register("m", record)
        conn = DuplicatingConnection(ep)
        transport = SocketTransport(connect=lambda: conn)
        for i in range(4):
            body = f"req-{i}".encode()
            response = transport.request("svc", frame("m", body))
            assert unframe(response) == ("m", body + b"!")
        assert calls == [b"req-0", b"req-1", b"req-2", b"req-3"]
