"""The socket plane: framing, deadlines, duplicate rejection, and the
server runner, over both real sockets and scripted connections."""

import socket
import threading
import time

import pytest

from repro.net.rpc import ServiceEndpoint, frame, unframe
from repro.net.service import Service
from repro.net.tcp import (
    MAX_FRAME_PAYLOAD,
    STATUS_ERROR,
    STATUS_OK,
    FrameConnection,
    PooledSocketTransport,
    ServerRunner,
    SocketTransport,
    connect_transport,
)
from repro.net.transport import (
    RemoteCallError,
    TransportConnectionLost,
    TransportError,
    TransportTimeout,
)
from repro.obs.clock import ManualClock


class EchoService(Service):
    service_name = "echo"

    def register_endpoint(self, endpoint: ServiceEndpoint) -> None:
        endpoint.register("upper", lambda b: b.upper())
        endpoint.register("boom", self._boom)

    def _boom(self, payload: bytes) -> bytes:
        raise ValueError("handler exploded")


@pytest.fixture()
def server():
    runner = ServerRunner([EchoService()], port=0)
    runner.start()
    yield runner
    runner.close()


class TestFrameConnection:
    def test_round_trip_over_a_socketpair(self):
        left, right = socket.socketpair()
        a, b = FrameConnection(left), FrameConnection(right)
        a.send_frame(7, "echo", STATUS_OK, b"payload")
        rid, service, status, payload = b.recv_frame(timeout=2.0)
        assert (rid, service, status, payload) == (7, "echo", 0, b"payload")
        a.close()
        b.close()

    def test_peer_close_is_connection_lost(self):
        left, right = socket.socketpair()
        left.close()
        with pytest.raises(TransportConnectionLost):
            FrameConnection(right).recv_frame(timeout=2.0)

    def test_absurd_declared_length_is_rejected(self):
        left, right = socket.socketpair()
        import struct

        header = struct.Struct("<Q16sBI").pack(
            1, b"echo".ljust(16, b"\0"), 0, MAX_FRAME_PAYLOAD + 1
        )
        left.sendall(header)
        with pytest.raises(TransportError, match="maximum"):
            FrameConnection(right).recv_frame(timeout=2.0)

    def test_oversized_service_name_rejected_on_send(self):
        left, _ = socket.socketpair()
        with pytest.raises(ValueError, match="16"):
            FrameConnection(left).send_frame(1, "x" * 17, STATUS_OK, b"")


class TestSocketTransportAgainstServer:
    def test_request_response(self, server):
        host, port = server.address
        transport = SocketTransport(host, port, timeout=5.0)
        response = transport.request("echo", frame("upper", b"abc"))
        assert unframe(response) == ("upper", b"ABC")
        transport.close()

    def test_handler_error_becomes_remote_call_error(self, server):
        host, port = server.address
        transport = SocketTransport(host, port, timeout=5.0)
        with pytest.raises(RemoteCallError, match="handler exploded"):
            transport.request("echo", frame("boom", b""))
        transport.close()

    def test_unknown_service_is_a_remote_error(self, server):
        host, port = server.address
        transport = SocketTransport(host, port, timeout=5.0)
        with pytest.raises(RemoteCallError, match="no such service"):
            transport.request("nope", frame("m", b""))
        transport.close()

    def test_meta_health_reports_every_service(self, server):
        import json

        host, port = server.address
        transport = SocketTransport(host, port, timeout=5.0)
        response = transport.request("_meta", frame("health", b""))
        _, body = unframe(response)
        report = json.loads(body)
        assert report["echo"]["status"] == "ok"
        transport.close()

    def test_connect_transport_layers_retry(self, server):
        host, port = server.address
        transport = connect_transport(host, port, timeout=5.0)
        response = transport.request("echo", frame("upper", b"zz"))
        assert unframe(response) == ("upper", b"ZZ")
        transport.close()

    def test_sequential_requests_reuse_the_connection(self, server):
        host, port = server.address
        transport = SocketTransport(host, port, timeout=5.0)
        for i in range(5):
            payload = f"msg{i}".encode()
            response = transport.request("echo", frame("upper", payload))
            assert unframe(response) == ("upper", payload.upper())
        transport.close()


class FakeConnection:
    """A scripted FrameConnection double.

    ``script`` maps each incoming request id (in send order, 0-based)
    to the list of frames to enqueue when that request is sent; each
    entry is (rid_offset, status, payload) where the response's id is
    the request's id plus the offset (0 = correct reply).
    """

    def __init__(self, script):
        self.script = script
        self.sent = []
        self.queue = []

    def send_frame(self, request_id, service, status, payload):
        self.sent.append((request_id, service, payload))
        for rid_offset, st, body in self.script.get(len(self.sent) - 1, []):
            self.queue.append((request_id + rid_offset, service, st, body))

    def recv_frame(self, timeout=None):
        if not self.queue:
            raise TransportTimeout("scripted: nothing left to receive")
        return self.queue.pop(0)

    def close(self):
        pass


class TestDuplicateRejection:
    def test_stale_then_fresh_response_resolves_correctly(self):
        ok = frame("m", b"fresh")
        conn = FakeConnection(
            {0: [(-1, STATUS_OK, b"stale"), (0, STATUS_OK, ok)]}
        )
        transport = SocketTransport(connect=lambda: conn)
        assert transport.request("svc", b"req") == ok

    def test_duplicate_responses_are_skipped_not_returned(self):
        ok = frame("m", b"answer")
        conn = FakeConnection(
            {
                0: [
                    (-3, STATUS_OK, b"dup-a"),
                    (-3, STATUS_OK, b"dup-a-again"),
                    (0, STATUS_OK, ok),
                ]
            }
        )
        transport = SocketTransport(connect=lambda: conn)
        assert transport.request("svc", b"req") == ok

    def test_only_stale_responses_times_out(self):
        conn = FakeConnection({0: [(-1, STATUS_OK, b"stale")]})
        transport = SocketTransport(connect=lambda: conn, timeout=5.0)
        with pytest.raises(TransportTimeout):
            transport.request("svc", b"req")

    def test_deadline_uses_the_injected_clock(self):
        clock = ManualClock()

        class SlowConn(FakeConnection):
            def recv_frame(self, timeout=None):
                clock.advance(10.0)  # simulate a stall
                return super().recv_frame(timeout)

        conn = SlowConn({0: [(-1, STATUS_OK, b"stale")] * 3})
        transport = SocketTransport(connect=lambda: conn, clock=clock)
        with pytest.raises(TransportTimeout, match="deadline"):
            transport.request("svc", b"req", timeout=15.0)

    def test_request_ids_increase_per_call(self):
        conn = FakeConnection(
            {i: [(0, STATUS_OK, frame("m", b"x"))] for i in range(3)}
        )
        transport = SocketTransport(connect=lambda: conn)
        for _ in range(3):
            transport.request("svc", b"req")
        rids = [rid for rid, _, _ in conn.sent]
        assert rids == sorted(rids) and len(set(rids)) == 3


class TestDesyncDrop:
    """A transport error that can leave partial bytes in the stream
    must drop the connection; reusing it would misparse the leftovers
    as the next frame header."""

    def test_timeout_mid_frame_drops_the_connection(self):
        connects = []

        class MidPayloadTimeout(FakeConnection):
            """Times out mid-payload: the header arrived but the
            payload stalled, leaving partial bytes in the stream.  If
            the transport wrongly reuses this connection, the next
            request misparses the leftovers."""

            def recv_frame(self, timeout=None):
                raise TransportTimeout("timed out mid-payload")

        def connect():
            if not connects:
                conn = MidPayloadTimeout({})
            else:
                conn = FakeConnection(
                    {0: [(0, STATUS_OK, frame("m", b"clean"))]}
                )
            connects.append(conn)
            return conn

        transport = SocketTransport(connect=connect, timeout=5.0)
        with pytest.raises(TransportTimeout):
            transport.request("svc", b"req")
        # The desynced connection must not be reused: the next request
        # opens a fresh one and completes cleanly.
        assert transport.request("svc", b"req2") == frame("m", b"clean")
        assert len(connects) == 2
        assert isinstance(connects[1], FakeConnection)

    def test_protocol_violation_drops_the_connection(self):
        connects = []

        class CorruptLength(FakeConnection):
            def recv_frame(self, timeout=None):
                raise TransportError("frame declares absurd length")

        def connect():
            if not connects:
                conn = CorruptLength({})
            else:
                conn = FakeConnection(
                    {0: [(0, STATUS_OK, frame("m", b"ok"))]}
                )
            connects.append(conn)
            return conn

        transport = SocketTransport(connect=connect, timeout=5.0)
        with pytest.raises(TransportError):
            transport.request("svc", b"req")
        assert transport.request("svc", b"req2") == frame("m", b"ok")
        assert len(connects) == 2

    def test_remote_call_error_keeps_the_connection(self):
        # An error *frame* is a complete, aligned exchange: no desync,
        # so the connection stays attached and is reused.
        connects = []

        def connect():
            conn = FakeConnection(
                {
                    0: [(0, STATUS_ERROR, b"handler exploded")],
                    1: [(0, STATUS_OK, frame("m", b"fine"))],
                }
            )
            connects.append(conn)
            return conn

        transport = SocketTransport(connect=connect, timeout=5.0)
        with pytest.raises(RemoteCallError):
            transport.request("svc", b"req")
        assert transport.request("svc", b"req2") == frame("m", b"fine")
        assert len(connects) == 1


class RecordingService(Service):
    service_name = "recorder"

    def __init__(self, name="recorder"):
        self.service_name = name
        self.opened = 0
        self.closed = 0

    def register_endpoint(self, endpoint: ServiceEndpoint) -> None:
        endpoint.register("ping", lambda b: b)

    def open(self) -> None:
        self.opened += 1

    def close(self) -> None:
        self.closed += 1


class PoisonedHealthService(Service):
    service_name = "poisoned"

    def register_endpoint(self, endpoint: ServiceEndpoint) -> None:
        endpoint.register("ping", lambda b: b)

    def health(self) -> dict:
        raise RuntimeError("health probe exploded")


class TestServerRunnerRaces:
    def test_accept_loop_survives_close_nulling_the_listener(self):
        # close() nulls self._listener / self._pool from another
        # thread; the accept loop must not re-read them mid-loop or a
        # badly timed close kills the (daemon, hence silent) thread.
        runner = ServerRunner([EchoService()], port=0).start()
        thread = runner._accept_thread
        listener, pool = runner._listener, runner._pool
        runner._listener = None
        runner._pool = None
        # Longer than the 0.2s accept timeout: the loop takes at least
        # one full iteration with the attributes nulled.
        time.sleep(0.6)
        alive_during_race = thread.is_alive()
        runner._listener, runner._pool = listener, pool
        try:
            assert alive_during_race
            # The runner still serves after the window.
            host, port = listener.getsockname()[:2]
            transport = SocketTransport(host, port, timeout=5.0)
            response = transport.request("echo", frame("upper", b"ok"))
            assert unframe(response) == ("upper", b"OK")
            transport.close()
        finally:
            runner.close()

    def test_concurrent_start_close_cycles_never_crash_accept(self):
        for _ in range(5):
            runner = ServerRunner([EchoService()], port=0).start()
            thread = runner._accept_thread
            closer = threading.Thread(target=runner.close)
            closer.start()
            closer.join(timeout=10.0)
            thread.join(timeout=10.0)
            assert not thread.is_alive()

    def test_start_failure_closes_already_opened_services(self):
        # Occupy a port, then ask the runner to bind it: bind() raises
        # and every service opened before the failure must be closed.
        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen()
        port = blocker.getsockname()[1]
        first = RecordingService("first")
        second = RecordingService("second")
        runner = ServerRunner([first, second], port=port)
        try:
            with pytest.raises(OSError):
                runner.start()
        finally:
            blocker.close()
        assert first.opened == 1 and first.closed == 1
        assert second.opened == 1 and second.closed == 1

    def test_failed_start_leaves_runner_restartable(self):
        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen()
        port = blocker.getsockname()[1]
        service = RecordingService()
        runner = ServerRunner([service], port=port)
        with pytest.raises(OSError):
            runner.start()
        blocker.close()
        runner.start()
        assert runner.address[1] == port
        runner.close()


class TestHealthIsolation:
    def test_one_poisoned_service_does_not_kill_the_meta_endpoint(self):
        import json

        runner = ServerRunner(
            [EchoService(), PoisonedHealthService()], port=0
        ).start()
        try:
            host, port = runner.address
            transport = SocketTransport(host, port, timeout=5.0)
            response = transport.request("_meta", frame("health", b""))
            _, body = unframe(response)
            report = json.loads(body)
            assert report["echo"]["status"] == "ok"
            assert report["poisoned"]["status"] == "error"
            assert "health probe exploded" in report["poisoned"]["error"]
            transport.close()
        finally:
            runner.close()


class ScriptedPoolTransport:
    """A Transport double for pool tests: scripted responses/errors."""

    def __init__(self, outcomes, created):
        self.outcomes = outcomes
        self.created = created
        self.closed = False

    def request(self, service, request, *, timeout=None):
        outcome = self.outcomes.pop(0) if self.outcomes else b"default"
        if isinstance(outcome, BaseException):
            raise outcome
        if callable(outcome):
            return outcome()
        return outcome

    def close(self):
        self.closed = True


class TestPooledSocketTransport:
    def make_pool(self, outcomes_per_conn, **kwargs):
        created = []

        def factory():
            outcomes = (
                list(outcomes_per_conn[len(created)])
                if len(created) < len(outcomes_per_conn)
                else []
            )
            transport = ScriptedPoolTransport(outcomes, created)
            created.append(transport)
            return transport

        pool = PooledSocketTransport(
            transport_factory=factory, **kwargs
        )
        return pool, created

    def test_sequential_requests_reuse_one_connection(self):
        pool, created = self.make_pool([[b"a", b"b", b"c"]])
        assert pool.request("svc", b"r1") == b"a"
        assert pool.request("svc", b"r2") == b"b"
        assert pool.request("svc", b"r3") == b"c"
        assert len(created) == 1
        assert pool.open_connections == 1
        pool.close()
        assert created[0].closed

    def test_retryable_failure_discards_the_connection(self):
        pool, created = self.make_pool(
            [[TransportConnectionLost("reset")], [b"fresh"]]
        )
        with pytest.raises(TransportConnectionLost):
            pool.request("svc", b"r1")
        assert created[0].closed
        assert pool.open_connections == 0
        assert pool.request("svc", b"r2") == b"fresh"
        assert len(created) == 2
        pool.close()

    def test_remote_call_error_keeps_the_connection_pooled(self):
        pool, created = self.make_pool(
            [[RemoteCallError("handler"), b"after"]]
        )
        with pytest.raises(RemoteCallError):
            pool.request("svc", b"r1")
        assert not created[0].closed
        assert pool.request("svc", b"r2") == b"after"
        assert len(created) == 1
        pool.close()

    def test_cap_blocks_until_a_slot_frees(self):
        release = threading.Event()
        entered = threading.Event()

        def slow():
            entered.set()
            release.wait(10.0)
            return b"slow"

        pool, created = self.make_pool(
            [[slow, b"reused"]], max_connections=1, timeout=10.0
        )
        results = {}

        def first():
            results["first"] = pool.request("svc", b"r1")

        t = threading.Thread(target=first)
        t.start()
        entered.wait(10.0)
        # The cap is 1 and the only connection is busy: this request
        # parks until the first one checks its transport back in.
        t2 = threading.Thread(
            target=lambda: results.update(
                second=pool.request("svc", b"r2")
            )
        )
        t2.start()
        release.set()
        t.join(10.0)
        t2.join(10.0)
        assert results == {"first": b"slow", "second": b"reused"}
        assert len(created) == 1
        pool.close()

    def test_cap_wait_times_out(self):
        release = threading.Event()
        entered = threading.Event()

        def slow():
            entered.set()
            release.wait(10.0)
            return b"slow"

        pool, _ = self.make_pool(
            [[slow]], max_connections=1, timeout=0.1
        )
        t = threading.Thread(target=lambda: pool.request("svc", b"r1"))
        t.start()
        entered.wait(10.0)
        with pytest.raises(TransportTimeout, match="pool slot"):
            pool.request("svc", b"r2")
        release.set()
        t.join(10.0)
        pool.close()

    def test_closed_pool_rejects_requests(self):
        pool, _ = self.make_pool([[b"x"]])
        pool.close()
        with pytest.raises(TransportError, match="closed"):
            pool.request("svc", b"r")

    def test_concurrent_requests_share_the_pool_against_a_server(self):
        runner = ServerRunner([EchoService()], port=0).start()
        try:
            host, port = runner.address
            pool = PooledSocketTransport(
                host, port, timeout=5.0, max_connections=4
            )
            errors = []

            def worker(i):
                try:
                    payload = f"m{i}".encode()
                    response = pool.request(
                        "echo", frame("upper", payload)
                    )
                    assert unframe(response) == (
                        "upper",
                        payload.upper(),
                    )
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(10.0)
            assert not errors
            assert pool.open_connections <= 4
            pool.close()
        finally:
            runner.close()


class TestServerRunner:
    def test_duplicate_service_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ServerRunner([EchoService(), EchoService()])

    def test_needs_at_least_one_service(self):
        with pytest.raises(ValueError, match="at least one"):
            ServerRunner([])

    def test_close_is_idempotent_and_reports_address_only_when_up(self):
        runner = ServerRunner([EchoService()], port=0)
        with pytest.raises(RuntimeError):
            runner.address
        runner.start()
        assert runner.address[1] > 0
        runner.close()
        runner.close()

    def test_context_manager(self):
        with ServerRunner([EchoService()], port=0) as runner:
            host, port = runner.address
            transport = SocketTransport(host, port, timeout=5.0)
            response = transport.request("echo", frame("upper", b"cm"))
            assert unframe(response) == ("upper", b"CM")
            transport.close()
