"""The socket plane: framing, deadlines, duplicate rejection, and the
server runner, over both real sockets and scripted connections."""

import socket

import pytest

from repro.net.rpc import ServiceEndpoint, frame, unframe
from repro.net.service import Service
from repro.net.tcp import (
    MAX_FRAME_PAYLOAD,
    STATUS_ERROR,
    STATUS_OK,
    FrameConnection,
    ServerRunner,
    SocketTransport,
    connect_transport,
)
from repro.net.transport import (
    RemoteCallError,
    TransportConnectionLost,
    TransportError,
    TransportTimeout,
)
from repro.obs.clock import ManualClock


class EchoService(Service):
    service_name = "echo"

    def register_endpoint(self, endpoint: ServiceEndpoint) -> None:
        endpoint.register("upper", lambda b: b.upper())
        endpoint.register("boom", self._boom)

    def _boom(self, payload: bytes) -> bytes:
        raise ValueError("handler exploded")


@pytest.fixture()
def server():
    runner = ServerRunner([EchoService()], port=0)
    runner.start()
    yield runner
    runner.close()


class TestFrameConnection:
    def test_round_trip_over_a_socketpair(self):
        left, right = socket.socketpair()
        a, b = FrameConnection(left), FrameConnection(right)
        a.send_frame(7, "echo", STATUS_OK, b"payload")
        rid, service, status, payload = b.recv_frame(timeout=2.0)
        assert (rid, service, status, payload) == (7, "echo", 0, b"payload")
        a.close()
        b.close()

    def test_peer_close_is_connection_lost(self):
        left, right = socket.socketpair()
        left.close()
        with pytest.raises(TransportConnectionLost):
            FrameConnection(right).recv_frame(timeout=2.0)

    def test_absurd_declared_length_is_rejected(self):
        left, right = socket.socketpair()
        import struct

        header = struct.Struct("<Q16sBI").pack(
            1, b"echo".ljust(16, b"\0"), 0, MAX_FRAME_PAYLOAD + 1
        )
        left.sendall(header)
        with pytest.raises(TransportError, match="maximum"):
            FrameConnection(right).recv_frame(timeout=2.0)

    def test_oversized_service_name_rejected_on_send(self):
        left, _ = socket.socketpair()
        with pytest.raises(ValueError, match="16"):
            FrameConnection(left).send_frame(1, "x" * 17, STATUS_OK, b"")


class TestSocketTransportAgainstServer:
    def test_request_response(self, server):
        host, port = server.address
        transport = SocketTransport(host, port, timeout=5.0)
        response = transport.request("echo", frame("upper", b"abc"))
        assert unframe(response) == ("upper", b"ABC")
        transport.close()

    def test_handler_error_becomes_remote_call_error(self, server):
        host, port = server.address
        transport = SocketTransport(host, port, timeout=5.0)
        with pytest.raises(RemoteCallError, match="handler exploded"):
            transport.request("echo", frame("boom", b""))
        transport.close()

    def test_unknown_service_is_a_remote_error(self, server):
        host, port = server.address
        transport = SocketTransport(host, port, timeout=5.0)
        with pytest.raises(RemoteCallError, match="no such service"):
            transport.request("nope", frame("m", b""))
        transport.close()

    def test_meta_health_reports_every_service(self, server):
        import json

        host, port = server.address
        transport = SocketTransport(host, port, timeout=5.0)
        response = transport.request("_meta", frame("health", b""))
        _, body = unframe(response)
        report = json.loads(body)
        assert report["echo"]["status"] == "ok"
        transport.close()

    def test_connect_transport_layers_retry(self, server):
        host, port = server.address
        transport = connect_transport(host, port, timeout=5.0)
        response = transport.request("echo", frame("upper", b"zz"))
        assert unframe(response) == ("upper", b"ZZ")
        transport.close()

    def test_sequential_requests_reuse_the_connection(self, server):
        host, port = server.address
        transport = SocketTransport(host, port, timeout=5.0)
        for i in range(5):
            payload = f"msg{i}".encode()
            response = transport.request("echo", frame("upper", payload))
            assert unframe(response) == ("upper", payload.upper())
        transport.close()


class FakeConnection:
    """A scripted FrameConnection double.

    ``script`` maps each incoming request id (in send order, 0-based)
    to the list of frames to enqueue when that request is sent; each
    entry is (rid_offset, status, payload) where the response's id is
    the request's id plus the offset (0 = correct reply).
    """

    def __init__(self, script):
        self.script = script
        self.sent = []
        self.queue = []

    def send_frame(self, request_id, service, status, payload):
        self.sent.append((request_id, service, payload))
        for rid_offset, st, body in self.script.get(len(self.sent) - 1, []):
            self.queue.append((request_id + rid_offset, service, st, body))

    def recv_frame(self, timeout=None):
        if not self.queue:
            raise TransportTimeout("scripted: nothing left to receive")
        return self.queue.pop(0)

    def close(self):
        pass


class TestDuplicateRejection:
    def test_stale_then_fresh_response_resolves_correctly(self):
        ok = frame("m", b"fresh")
        conn = FakeConnection(
            {0: [(-1, STATUS_OK, b"stale"), (0, STATUS_OK, ok)]}
        )
        transport = SocketTransport(connect=lambda: conn)
        assert transport.request("svc", b"req") == ok

    def test_duplicate_responses_are_skipped_not_returned(self):
        ok = frame("m", b"answer")
        conn = FakeConnection(
            {
                0: [
                    (-3, STATUS_OK, b"dup-a"),
                    (-3, STATUS_OK, b"dup-a-again"),
                    (0, STATUS_OK, ok),
                ]
            }
        )
        transport = SocketTransport(connect=lambda: conn)
        assert transport.request("svc", b"req") == ok

    def test_only_stale_responses_times_out(self):
        conn = FakeConnection({0: [(-1, STATUS_OK, b"stale")]})
        transport = SocketTransport(connect=lambda: conn, timeout=5.0)
        with pytest.raises(TransportTimeout):
            transport.request("svc", b"req")

    def test_deadline_uses_the_injected_clock(self):
        clock = ManualClock()

        class SlowConn(FakeConnection):
            def recv_frame(self, timeout=None):
                clock.advance(10.0)  # simulate a stall
                return super().recv_frame(timeout)

        conn = SlowConn({0: [(-1, STATUS_OK, b"stale")] * 3})
        transport = SocketTransport(connect=lambda: conn, clock=clock)
        with pytest.raises(TransportTimeout, match="deadline"):
            transport.request("svc", b"req", timeout=15.0)

    def test_request_ids_increase_per_call(self):
        conn = FakeConnection(
            {i: [(0, STATUS_OK, frame("m", b"x"))] for i in range(3)}
        )
        transport = SocketTransport(connect=lambda: conn)
        for _ in range(3):
            transport.request("svc", b"req")
        rids = [rid for rid, _, _ in conn.sent]
        assert rids == sorted(rids) and len(set(rids)) == 3


class TestServerRunner:
    def test_duplicate_service_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ServerRunner([EchoService(), EchoService()])

    def test_needs_at_least_one_service(self):
        with pytest.raises(ValueError, match="at least one"):
            ServerRunner([])

    def test_close_is_idempotent_and_reports_address_only_when_up(self):
        runner = ServerRunner([EchoService()], port=0)
        with pytest.raises(RuntimeError):
            runner.address
        runner.start()
        assert runner.address[1] > 0
        runner.close()
        runner.close()

    def test_context_manager(self):
        with ServerRunner([EchoService()], port=0) as runner:
            host, port = runner.address
            transport = SocketTransport(host, port, timeout=5.0)
            response = transport.request("echo", frame("upper", b"cm"))
            assert unframe(response) == ("upper", b"CM")
            transport.close()
