"""Tests for the tf-idf and BM25 retrieval baselines."""

import numpy as np
import pytest

from repro.embeddings import Bm25Retriever, TfidfRetriever

CORPUS = [
    "knee pain causes and treatment options for runners",
    "tokyo weather forecast rain tomorrow",
    "symptoms of covid19 fever cough fatigue",
    "graduate school admissions advice and research careers",
    "best running shoes for marathon training",
    "japanese cuisine sushi ramen tokyo restaurants",
    "chronic joint pain arthritis knee therapy exercises",
    "weather patterns and climate change research",
]


class TestTfidf:
    def test_exact_topic_match_ranks_first(self):
        r = TfidfRetriever(CORPUS)
        assert r.rank("covid19 symptoms fever")[0] == 2

    def test_related_documents_rank_high(self):
        r = TfidfRetriever(CORPUS)
        top3 = r.rank("knee pain", k=3)
        assert set(top3) >= {0, 6}

    def test_scores_are_cosines(self):
        r = TfidfRetriever(CORPUS)
        scores = r.scores("tokyo weather")
        assert scores.shape == (len(CORPUS),)
        assert np.all(scores <= 1.0 + 1e-9) and np.all(scores >= 0.0)

    def test_unknown_terms_score_zero(self):
        r = TfidfRetriever(CORPUS)
        assert not r.scores("xylophone quasar").any()

    def test_rank_respects_k(self):
        r = TfidfRetriever(CORPUS)
        assert len(r.rank("pain", k=3)) == 3

    def test_index_bytes_positive(self):
        assert TfidfRetriever(CORPUS).index_bytes() > 0


class TestRestrictedVocabulary:
    """The Coeus configuration collapses on common-term queries (SS8.2)."""

    def test_restricted_dictionary_misses_common_terms(self):
        tiny = TfidfRetriever.with_restricted_vocab(CORPUS, top_idf_terms=3)
        full = TfidfRetriever(CORPUS)
        assert len(tiny.vocab) == 3
        assert len(full.vocab) > 3
        # Most query terms fall outside the restricted dictionary.
        assert np.count_nonzero(tiny.scores("knee pain")) <= np.count_nonzero(
            full.scores("knee pain")
        )


class TestBm25:
    def test_exact_topic_match_ranks_first(self):
        r = Bm25Retriever.from_documents(CORPUS)
        assert r.rank("covid19 symptoms fever")[0] == 2

    def test_default_parameters_match_paper(self):
        r = Bm25Retriever.from_documents(CORPUS)
        assert r.k1 == 0.9 and r.b == 0.4

    def test_scores_nonnegative(self):
        r = Bm25Retriever.from_documents(CORPUS)
        assert np.all(r.scores("knee pain arthritis") >= 0)

    def test_term_frequency_saturates(self):
        docs = ["pain " * 50 + "knee", "pain knee therapy"]
        r = Bm25Retriever.from_documents(docs)
        scores = r.scores("pain")
        # BM25 saturation: 50x repetition must not give 50x the score.
        assert scores[0] < 5 * scores[1]

    def test_unknown_query_scores_zero(self):
        r = Bm25Retriever.from_documents(CORPUS)
        assert not r.scores("zzzz").any()

    def test_index_bytes_positive(self):
        assert Bm25Retriever.from_documents(CORPUS).index_bytes() > 0
