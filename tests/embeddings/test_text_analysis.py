"""Tests for tokenizer, Porter stemmer, and vocabulary."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings import Vocabulary, analyze, porter_stem, tokenize


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello, WORLD-wide Web!") == ["hello", "world", "wide", "web"]

    def test_drops_stopwords_and_short_tokens(self):
        assert tokenize("the cat is on a mat") == ["cat", "mat"]

    def test_keeps_numbers(self):
        assert tokenize("covid19 symptoms in 2023") == ["covid19", "symptoms", "2023"]

    def test_empty_input(self):
        assert tokenize("") == []
        assert tokenize("a I !") == []

    def test_analyze_stems(self):
        assert analyze("running quickly") == ["run", "quickli"]
        assert analyze("running quickly", stem=False) == ["running", "quickly"]


class TestPorterStemmer:
    """Reference examples from Porter's original paper."""

    @pytest.mark.parametrize(
        "word,stem",
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("failing", "fail"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("formaliti", "formal"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ],
    )
    def test_reference_examples(self, word, stem):
        assert porter_stem(word) == stem

    def test_short_words_untouched(self):
        assert porter_stem("a") == "a"
        assert porter_stem("is") == "is"

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_idempotent_on_most_words(self, word):
        # Stemming never crashes and never grows a word by more than
        # the single 'e' that step 1b can restore.
        out = porter_stem(word)
        assert len(out) <= len(word) + 1


class TestVocabulary:
    def test_build_and_lookup(self):
        vocab = Vocabulary.build([["cat", "dog"], ["cat", "fish"]])
        assert len(vocab) == 3
        assert "cat" in vocab
        assert vocab.doc_freq[vocab.id_of("cat")] == 2
        assert vocab.doc_freq[vocab.id_of("fish")] == 1

    def test_min_df_filters_rare_terms(self):
        vocab = Vocabulary.build([["cat", "dog"], ["cat"]], min_df=2)
        assert "cat" in vocab and "dog" not in vocab

    def test_max_terms_keeps_most_frequent(self):
        vocab = Vocabulary.build(
            [["cat", "dog"], ["cat", "fish"], ["cat"]], max_terms=1
        )
        assert list(vocab.term_to_id) == ["cat"]

    def test_idf_orders_by_rarity(self):
        vocab = Vocabulary.build([["cat", "dog"], ["cat", "fish"], ["cat"]])
        assert vocab.idf(vocab.id_of("fish")) > vocab.idf(vocab.id_of("cat"))

    def test_restrict_to_top_idf_keeps_rarest(self):
        vocab = Vocabulary.build([["cat", "dog"], ["cat", "fish"], ["cat"]])
        restricted = vocab.restrict_to_top_idf(2)
        assert "cat" not in restricted
        assert "dog" in restricted and "fish" in restricted
        assert restricted.num_docs == vocab.num_docs
