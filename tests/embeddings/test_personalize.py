"""Tests for client-side personalized search (SS9)."""

import numpy as np
import pytest

from repro.embeddings import HashingEmbedder
from repro.embeddings.personalize import PersonalizedEmbedder


@pytest.fixture(scope="module")
def base():
    return HashingEmbedder(dim=48)


class TestPersonalizedEmbedder:
    def test_profile_pulls_results_toward_profile_topic(self, base):
        plain = base
        tokyo = PersonalizedEmbedder.from_profile_text(
            base, "tokyo japan sushi ramen", weight=0.4
        )
        docs = [
            "best restaurants for sushi ramen in tokyo japan",
            "best restaurants for tapas in barcelona spain",
        ]
        doc_emb = np.stack([base.embed(d) for d in docs])
        query = "best restaurants"
        plain_scores = doc_emb @ plain.embed(query)
        perso_scores = doc_emb @ tokyo.embed(query)
        # Personalization shifts the margin toward the Tokyo document.
        assert (perso_scores[0] - perso_scores[1]) > (
            plain_scores[0] - plain_scores[1]
        )

    def test_zero_weight_matches_base(self, base):
        p = PersonalizedEmbedder.from_profile_text(base, "anything", weight=0.0)
        q = "some query text"
        assert np.allclose(p.embed(q), base.embed(q))

    def test_from_history_averages(self, base):
        history = np.stack([base.embed("sushi"), base.embed("ramen")])
        p = PersonalizedEmbedder.from_history(base, history, weight=0.5)
        manual = history.mean(axis=0)
        manual /= np.linalg.norm(manual)
        assert np.allclose(p.profile, manual)

    def test_outputs_are_unit_norm(self, base):
        p = PersonalizedEmbedder.from_profile_text(base, "tokyo", weight=0.3)
        assert np.linalg.norm(p.embed("weather")) == pytest.approx(1.0)
        batch = p.embed_batch(["a b", "c d"])
        assert np.allclose(np.linalg.norm(batch, axis=1), 1.0)

    def test_validation(self, base):
        with pytest.raises(ValueError):
            PersonalizedEmbedder(base=base, profile=np.ones(4), weight=1.0)
        with pytest.raises(ValueError):
            PersonalizedEmbedder(base=base, profile=np.zeros(4), weight=0.3)

    def test_servers_see_no_profile(self, base, corpus):
        """The engine's document side is untouched by personalization:
        the same index serves personalized and plain clients."""
        from repro import TiptoeConfig, TiptoeEngine

        engine = TiptoeEngine.build(
            corpus.texts()[:60],
            corpus.urls()[:60],
            TiptoeConfig(),
            rng=np.random.default_rng(0),
        )
        profile = PersonalizedEmbedder.from_profile_text(
            engine.index.embedder, corpus.documents[10].text, weight=0.4
        )
        engine._query_embedder = profile
        result = engine.search("search words", np.random.default_rng(1))
        assert result.results  # personalized query served by plain index
