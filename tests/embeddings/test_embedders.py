"""Tests for the LSA, hashing, PCA, quantization, and joint embedders."""

import numpy as np
import pytest

from repro.embeddings import (
    HashingEmbedder,
    LsaEmbedder,
    PcaReducer,
    QuantizationConfig,
    dequantize,
    quantize,
)
from repro.embeddings.joint import JointEmbedder

CORPUS = [
    "knee pain treatment therapy for joint injuries",
    "knee pain arthritis joint exercises",
    "chronic pain therapy and physical exercises",
    "tokyo weather forecast rain and sunshine",
    "weather climate rain patterns in tokyo",
    "sushi ramen japanese restaurants in tokyo",
    "marathon running training shoes",
    "running shoes for knee injuries",
    "graduate school research advice",
    "research careers in graduate school",
]


@pytest.fixture(scope="module")
def lsa():
    return LsaEmbedder.fit(CORPUS, dim=8)


class TestLsaEmbedder:
    def test_embeddings_are_unit_norm(self, lsa):
        for doc in CORPUS:
            assert np.linalg.norm(lsa.embed(doc)) == pytest.approx(1.0)

    def test_same_topic_closer_than_different_topic(self, lsa):
        pain_a = lsa.embed("knee pain treatment")
        pain_b = lsa.embed("joint pain exercises")
        weather = lsa.embed("tokyo weather rain")
        assert pain_a @ pain_b > pain_a @ weather

    def test_semantic_match_without_exact_overlap(self, lsa):
        # "therapy" and "arthritis" co-occur with "pain" in training:
        # latent structure links them even with no shared query term.
        q = lsa.embed("arthritis therapy")
        scores = lsa.embed_batch(CORPUS) @ q
        assert np.argmax(scores) in {0, 1, 2}

    def test_batch_matches_single(self, lsa):
        batch = lsa.embed_batch(CORPUS[:3])
        for i in range(3):
            assert np.allclose(batch[i], lsa.embed(CORPUS[i]))

    def test_empty_text_embeds_to_zero(self, lsa):
        assert not lsa.embed("").any()

    def test_tiny_corpus_rejected(self):
        with pytest.raises(ValueError):
            LsaEmbedder.fit(["one"], dim=4)

    def test_model_bytes_positive(self, lsa):
        assert lsa.model_bytes() > 0


class TestHashingEmbedder:
    def test_deterministic(self):
        e1 = HashingEmbedder(dim=16).embed("knee pain")
        e2 = HashingEmbedder(dim=16).embed("knee pain")
        assert np.array_equal(e1, e2)

    def test_unit_norm(self):
        e = HashingEmbedder(dim=16)
        assert np.linalg.norm(e.embed("some text here")) == pytest.approx(1.0)

    def test_shared_tokens_increase_similarity(self):
        e = HashingEmbedder(dim=64)
        overlap = e.embed("knee pain treatment") @ e.embed("knee pain relief")
        disjoint = e.embed("knee pain treatment") @ e.embed("sushi ramen tokyo")
        assert overlap > disjoint

    def test_morphological_variants_similar(self):
        # Character trigrams give stems of the same word high overlap.
        e = HashingEmbedder(dim=64)
        related = e.embed("running") @ e.embed("runner")
        unrelated = e.embed("running") @ e.embed("weather")
        assert related > unrelated


class TestPca:
    def test_reduces_dimension_and_normalizes(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((50, 12))
        pca = PcaReducer.fit(data, dim=4)
        out = pca.transform(data)
        assert out.shape == (50, 4)
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_single_vector_transform(self):
        rng = np.random.default_rng(1)
        pca = PcaReducer.fit(rng.standard_normal((20, 6)), dim=3)
        assert pca.transform(rng.standard_normal(6)).shape == (3,)

    def test_captures_dominant_direction(self):
        rng = np.random.default_rng(2)
        base = rng.standard_normal(8)
        data = np.outer(rng.standard_normal(100), base)
        data += 0.01 * rng.standard_normal(data.shape)
        pca = PcaReducer.fit(data, dim=1)
        assert pca.explained_variance_ratio[0] > 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            PcaReducer.fit(np.zeros((5, 3)), dim=0)
        with pytest.raises(ValueError):
            PcaReducer.fit(np.zeros((5, 3)), dim=4)
        with pytest.raises(ValueError):
            PcaReducer.fit(np.zeros((1, 3)), dim=1)
        with pytest.raises(ValueError):
            PcaReducer.fit(np.zeros(3), dim=1)

    def test_projection_bytes(self):
        rng = np.random.default_rng(3)
        pca = PcaReducer.fit(rng.standard_normal((10, 6)), dim=2)
        assert pca.projection_bytes() == 2 * 6 * 8 + 6 * 8


class TestQuantization:
    def test_round_trip_error_bounded(self):
        rng = np.random.default_rng(4)
        cfg = QuantizationConfig(precision_bits=4)
        vals = rng.uniform(-1, 1, size=100)
        err = np.abs(dequantize(quantize(vals, cfg), cfg) - vals)
        assert err.max() <= 0.5 / cfg.scale + 1e-12

    def test_clipping(self):
        cfg = QuantizationConfig(precision_bits=4)
        out = quantize(np.array([5.0, -5.0]), cfg)
        assert list(out) == [cfg.scale, -cfg.scale]

    def test_inner_products_track_real_ones(self):
        rng = np.random.default_rng(5)
        cfg = QuantizationConfig(precision_bits=4)
        a = rng.uniform(-1, 1, size=64) / 8
        b = rng.uniform(-1, 1, size=64) / 8
        approx = (quantize(a, cfg) @ quantize(b, cfg)) / (cfg.scale**2)
        assert abs(approx - a @ b) < 0.1

    def test_modulus_check_matches_appendix_b1(self):
        cfg = QuantizationConfig(precision_bits=4)
        # Paper: d = 192 at 4 bits needs p = 2^17.
        assert cfg.min_plaintext_modulus(192) <= 2**17
        cfg.check_modulus(2**17, 192)
        with pytest.raises(ValueError):
            cfg.check_modulus(2**12, 192)

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError):
            QuantizationConfig(precision_bits=0)


class TestJointEmbedder:
    def test_caption_query_retrieves_its_image(self):
        rng = np.random.default_rng(6)
        text = HashingEmbedder(dim=32)
        captions = [
            "a dog running on the beach",
            "sushi on a wooden table",
            "mountain landscape at sunset",
            "a man wearing a blue shirt",
            "rainy street in tokyo at night",
            "a train at the station platform",
        ]
        images = rng.standard_normal((len(captions), 16))
        joint = JointEmbedder.fit(text, captions, images)
        img_emb = joint.embed_images(images)
        hits = 0
        for i, cap in enumerate(captions):
            scores = img_emb @ joint.embed_text(cap)
            hits += int(np.argmax(scores) == i)
        assert hits >= 5

    def test_dimension_doubling(self):
        rng = np.random.default_rng(7)
        text = HashingEmbedder(dim=16)
        captions = ["a", "b", "c", "d"]
        images = rng.standard_normal((4, 32))
        joint = JointEmbedder.fit(text, captions, images)
        assert joint.dim == 32
        assert joint.embed_text("anything").shape == (32,)

    def test_mismatched_pairs_rejected(self):
        with pytest.raises(ValueError):
            JointEmbedder.fit(
                HashingEmbedder(dim=8), ["only one"], np.zeros((2, 4))
            )
