"""Unit tests for wrap-around ring arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lwe import modular


@pytest.mark.parametrize("q_bits", [32, 64])
class TestRingBasics:
    def test_to_ring_reduces_negative_values(self, q_bits):
        q = 1 << q_bits
        out = modular.to_ring(np.array([-1, -2, 5]), q_bits)
        assert out.dtype == modular.dtype_for(q_bits)
        assert list(out.astype(object)) == [q - 1, q - 2, 5]

    def test_centered_round_trip(self, q_bits):
        q = 1 << q_bits
        vals = modular.to_ring(np.array([0, 1, -1, q // 2 - 1]), q_bits)
        cent = modular.centered(vals, q_bits)
        assert list(cent.astype(object)) == [0, 1, -1, q // 2 - 1]

    def test_add_sub_inverse(self, q_bits):
        rng = np.random.default_rng(0)
        a = modular.to_ring(rng.integers(0, 2**31, 50), q_bits)
        b = modular.to_ring(rng.integers(0, 2**31, 50), q_bits)
        back = modular.sub(modular.add(a, b, q_bits), b, q_bits)
        assert np.array_equal(back, a)

    def test_matmul_wraps_like_integer_arithmetic(self, q_bits):
        q = 1 << q_bits
        rng = np.random.default_rng(1)
        a = rng.integers(0, q, size=(4, 6), dtype=modular.dtype_for(q_bits))
        b = rng.integers(0, q, size=(6, 3), dtype=modular.dtype_for(q_bits))
        got = modular.matmul(a, b, q_bits)
        want = (a.astype(object) @ b.astype(object)) % q
        assert np.array_equal(got.astype(object), want)

    def test_scale(self, q_bits):
        q = 1 << q_bits
        a = modular.to_ring(np.array([1, 2, 3]), q_bits)
        out = modular.scale(a, q - 1, q_bits)  # multiply by -1
        assert list(out.astype(object)) == [q - 1, q - 2, q - 3]

    def test_encode_round_trip(self, q_bits):
        p = 256
        msgs = np.array([0, 1, 127, 128, 255, -1])
        enc = modular.encode_message(msgs, q_bits, p)
        dec = modular.round_to_message(enc, q_bits, p)
        assert list(dec) == [0, 1, 127, 128, 255, 255]

    def test_round_tolerates_noise_below_half_delta(self, q_bits):
        p = 1024
        delta = (1 << q_bits) // p
        msgs = np.arange(p)
        enc = modular.encode_message(msgs, q_bits, p)
        noise = modular.to_ring(
            np.resize(np.array([delta // 2 - 1, -(delta // 2) + 1]), p), q_bits
        )
        dec = modular.round_to_message(modular.add(enc, noise, q_bits), q_bits, p)
        assert np.array_equal(dec, msgs)

    def test_round_rejects_non_dividing_modulus(self, q_bits):
        with pytest.raises(ValueError):
            modular.round_to_message(np.array([0]), q_bits, 3)


class TestModSwitch:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_matches_integer_reference_q32(self, x):
        t = 65537
        got = int(modular.mod_switch(np.array([x]), 32, t)[0])
        want = ((x * t + (1 << 31)) >> 32) % t
        assert got == want

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=200, deadline=None)
    def test_matches_integer_reference_q64(self, x):
        t = 4294967291  # largest prime below 2^32
        got = int(modular.mod_switch(np.array([x], dtype=np.uint64), 64, t)[0])
        want = ((x * t + (1 << 63)) >> 64) % t
        assert got == want

    def test_rejects_large_target_from_q64(self):
        with pytest.raises(ValueError):
            modular.mod_switch(np.array([1], dtype=np.uint64), 64, 1 << 33)

    def test_preserves_scaled_values_approximately(self):
        rng = np.random.default_rng(2)
        t = 4294967291
        x = rng.integers(0, 1 << 63, size=100, dtype=np.uint64)
        switched = modular.mod_switch(x, 64, t).astype(np.float64)
        expected = x.astype(np.float64) * (t / 2.0**64)
        assert np.max(np.abs(switched - expected)) <= 1.0


def test_dtype_for_rejects_unsupported():
    with pytest.raises(ValueError):
        modular.dtype_for(16)
    with pytest.raises(ValueError):
        modular.signed_dtype_for(48)


class TestPlanCacheEviction:
    def test_evicted_plans_are_closed_and_counted(self):
        """LRU overflow must close() the evicted plan (backend plans
        hold real resources) and show up in plan_cache_stats()."""
        modular.clear_plan_cache()
        closed = []
        original_close = modular.StackedPlan.close

        def recording_close(self):
            closed.append(self)
            original_close(self)

        rng = np.random.default_rng(41)
        b = modular.to_ring(rng.integers(0, 1 << 31, size=(6, 2)), 32)
        try:
            modular.StackedPlan.close = recording_close
            for i in range(modular.PLAN_CACHE_SIZE + 3):
                a = np.full((4, 6), i, dtype=np.int64)
                modular.stacked_matmul(a, b, 32)
        finally:
            modular.StackedPlan.close = original_close
        stats = modular.plan_cache_stats()
        assert stats["evictions"] == 3
        assert stats["misses"] == modular.PLAN_CACHE_SIZE + 3
        assert len(closed) == 3
        modular.clear_plan_cache()

    def test_clear_resets_the_eviction_counter(self):
        modular.clear_plan_cache()
        assert modular.plan_cache_stats() == {
            "hits": 0, "misses": 0, "evictions": 0,
        }
