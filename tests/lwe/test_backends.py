"""The kernel backend seam: registry, lifecycle, tuning, selection.

Bit-identity across backends is covered by the property suite in
``test_batch_apply.py``; this file tests the machinery around the
kernels -- how backends are named and resolved, how the shared-memory
pool lives and dies, how a tuned :class:`KernelPlan` round-trips
through its sidecar dict form, and how ``resolve_kernel_selection``
arbitrates between the config and the sidecar record.
"""

import numpy as np
import pytest

from repro.core.config import TiptoeConfig
from repro.core.services import resolve_kernel_selection
from repro.lwe import backends as kernel_backends
from repro.lwe import modular
from repro.lwe.backends import (
    KernelPlan,
    KernelUnavailable,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    tune_matrix,
)
from repro.lwe.backends.numba_backend import NumbaBackend
from repro.lwe.backends.shm import SharedMemoryBackend
from repro.lwe.sampling import seeded_rng


@pytest.fixture
def small_matrix():
    rng = seeded_rng(21)
    return rng.integers(-8, 9, size=(12, 10))


class TestRegistry:
    def test_shipped_backends_are_registered(self):
        names = backend_names()
        for expected in ("reference", "multiprocess", "numba", "cnative"):
            assert expected in names

    def test_default_and_auto_resolve_to_reference(self):
        assert get_backend(None).name == "reference"
        assert get_backend("auto").name == "reference"

    def test_unknown_backend_is_a_clear_error(self):
        with pytest.raises(ValueError, match="reference"):
            get_backend("cuda")

    def test_unavailable_backend_falls_back_to_reference(self):
        class Unavailable:
            name = "test-unavailable"
            available = False

            def plan(self, *a, **k):  # pragma: no cover - never called
                raise AssertionError

        register_backend(Unavailable())
        try:
            assert get_backend("test-unavailable").name == "reference"
            assert "test-unavailable" not in available_backends()
            assert not kernel_backends.backend_available("test-unavailable")
        finally:
            with kernel_backends._REGISTRY_LOCK:
                kernel_backends._REGISTRY.pop("test-unavailable")

    def test_backend_available_probes_one_backend(self):
        assert kernel_backends.backend_available("reference")
        assert not kernel_backends.backend_available("no-such-backend")


class TestNumbaFallback:
    def test_backend_is_always_available(self, small_matrix):
        backend = NumbaBackend()
        assert backend.available
        plan = backend.plan(small_matrix, 32)
        try:
            if backend.jit_enabled:  # pragma: no cover - numba absent
                assert plan.backend_name == "numba"
            else:
                # numba is not installed here: the backend must no-op
                # to the reference kernel, not fail.
                assert plan.backend_name == "reference"
        finally:
            plan.close()


class TestSharedMemoryLifecycle:
    def test_close_is_idempotent_and_final(self, small_matrix):
        plan = SharedMemoryBackend().plan(small_matrix, 32, workers=2)
        stacked = modular.to_ring(np.ones((10, 2), dtype=np.int64), 32)
        assert plan.matmul(stacked).shape == (12, 2)
        plan.close()
        plan.close()  # second close must not raise
        with pytest.raises(KernelUnavailable):
            plan.matmul(stacked)

    def test_context_manager_closes(self, small_matrix):
        with SharedMemoryBackend().plan(small_matrix, 32, workers=2) as plan:
            pass
        with pytest.raises(KernelUnavailable):
            plan.matmul(modular.to_ring(np.ones((10, 1), dtype=np.int64), 32))

    def test_shape_mismatch_rejected(self, small_matrix):
        with SharedMemoryBackend().plan(small_matrix, 32, workers=2) as plan:
            with pytest.raises(ValueError):
                plan.matmul(
                    modular.to_ring(np.ones((7, 2), dtype=np.int64), 32)
                )

    def test_metadata_matches_reference(self, small_matrix):
        ref = get_backend("reference").plan(small_matrix, 32)
        with SharedMemoryBackend().plan(small_matrix, 32, workers=2) as mp:
            try:
                assert mp.metadata() == ref.metadata()
                assert mp.backend_name == "multiprocess"
            finally:
                ref.close()

    def test_empty_batch_short_circuits(self, small_matrix):
        with SharedMemoryBackend().plan(small_matrix, 32, workers=2) as plan:
            got = plan.matmul(
                modular.to_ring(np.empty((10, 0), dtype=np.int64), 32)
            )
            assert got.shape == (12, 0)


class TestKernelPlanRecord:
    def test_round_trips_through_dict(self):
        record = KernelPlan(
            backend="multiprocess",
            limb_bits=17,
            chunk_rows=1024,
            workers=4,
            batch_size=16,
            seconds=0.25,
            throughput=64.0,
        )
        assert KernelPlan.from_dict(record.to_dict()) == record

    def test_from_dict_tolerates_missing_measurements(self):
        plan = KernelPlan.from_dict(
            {"backend": "reference", "limb_bits": 0, "chunk_rows": 0,
             "workers": 0}
        )
        assert plan.backend == "reference"
        assert plan.throughput == 0.0

    def test_malformed_record_is_a_clean_value_error(self):
        # A sidecar from a different schema era: missing keys and
        # non-numeric fields must surface as ValueError, not
        # KeyError/TypeError, so the serving layer can catch-and-warn.
        with pytest.raises(ValueError, match="malformed"):
            KernelPlan.from_dict({"backend": "reference"})
        with pytest.raises(ValueError, match="malformed"):
            KernelPlan.from_dict(
                {"backend": "reference", "limb_bits": "wide",
                 "chunk_rows": 0, "workers": 0}
            )

    def test_plan_kwargs_drop_zero_limb(self):
        tuned = KernelPlan.from_dict(
            {"backend": "reference", "limb_bits": 0, "chunk_rows": 512,
             "workers": 2}
        )
        kwargs = tuned.plan_kwargs()
        assert kwargs["limb_bits"] is None
        assert kwargs["chunk_rows"] == 512
        assert kwargs["workers"] == 2


class TestAutotuner:
    def test_picks_an_exact_backend(self, small_matrix):
        best = tune_matrix(small_matrix, 32, batch_size=4, repeats=1)
        assert best.backend in backend_names()
        assert best.throughput > 0
        assert best.seconds > 0
        assert best.batch_size == 4

    def test_restricting_backends_restricts_the_winner(self, small_matrix):
        best = tune_matrix(
            small_matrix, 32, batch_size=2, repeats=1,
            backends=["reference"],
        )
        assert best.backend == "reference"

    def test_candidate_grid_is_deduped_and_core_bounded(self, monkeypatch):
        from repro.lwe.backends import autotune

        monkeypatch.setattr(autotune.os, "cpu_count", lambda: 2)
        grid = autotune._candidates(
            17, 2048, ["reference", "multiprocess", "cnative"]
        )
        assert len(grid) == len(set(grid)), "grid has duplicates"
        cores = 2
        for name, _limb, _chunk, workers in grid:
            if name in ("multiprocess", "cnative"):
                assert 1 <= workers <= cores, (name, workers)

    def test_single_core_host_still_gets_parallel_candidates(
        self, monkeypatch
    ):
        from repro.lwe.backends import autotune

        monkeypatch.setattr(autotune.os, "cpu_count", lambda: 1)
        grid = autotune._candidates(
            17, 100, ["reference", "multiprocess", "cnative"]
        )
        # The hygiene filter must degrade parallel backends to one
        # worker, not drop them from the race entirely.
        assert ("multiprocess", 17, 0, 1) in grid
        assert ("cnative", 17, 0, 1) in grid

    def test_max_seconds_zero_still_produces_a_plan(self, small_matrix):
        best = tune_matrix(
            small_matrix, 32, batch_size=2, repeats=1, max_seconds=0.0
        )
        # The budget was spent before the sweep began; the guaranteed
        # first candidate (a reference default) still ran and won.
        assert best.backend == "reference"
        assert best.throughput > 0

    def test_winner_options_rebuild_an_exact_plan(self, small_matrix):
        best = tune_matrix(small_matrix, 32, batch_size=4, repeats=1)
        rng = seeded_rng(5)
        stacked = modular.to_ring(
            rng.integers(0, 1 << 31, size=(10, 4)), 32
        )
        ring = modular.to_ring(small_matrix, 32)
        plan = get_backend(best.backend).plan(
            small_matrix, 32, **best.plan_kwargs()
        )
        try:
            assert np.array_equal(
                plan.matmul(stacked), modular.matmul(ring, stacked, 32)
            )
        finally:
            plan.close()


class TestResolveKernelSelection:
    RECORD = {
        "kernel_plan": {
            "ranking": {
                "backend": "multiprocess",
                "limb_bits": 17,
                "chunk_rows": 0,
                "workers": 2,
            }
        }
    }

    def test_auto_without_record_is_reference_defaults(self):
        config = TiptoeConfig()
        assert resolve_kernel_selection(config, None, "ranking") == (
            None,
            {},
        )
        assert resolve_kernel_selection(config, {}, "url") == (None, {})

    def test_auto_with_record_uses_the_tuned_plan(self):
        config = TiptoeConfig()
        backend, opts = resolve_kernel_selection(
            config, self.RECORD, "ranking"
        )
        assert backend == "multiprocess"
        assert opts == {"limb_bits": 17, "chunk_rows": 0, "workers": 2}

    def test_explicit_backend_overrides_the_record(self):
        config = TiptoeConfig(kernel_backend="reference")
        backend, opts = resolve_kernel_selection(
            config, self.RECORD, "ranking"
        )
        assert backend == "reference"
        assert opts == {}  # tuned for multiprocess; not transferable

    def test_explicit_backend_keeps_matching_tuned_options(self):
        config = TiptoeConfig(kernel_backend="multiprocess")
        backend, opts = resolve_kernel_selection(
            config, self.RECORD, "ranking"
        )
        assert backend == "multiprocess"
        assert opts["workers"] == 2

    def test_record_for_the_other_matrix_does_not_apply(self):
        config = TiptoeConfig()
        assert resolve_kernel_selection(config, self.RECORD, "url") == (
            None,
            {},
        )

    def test_empty_backend_is_rejected_at_config_time(self):
        with pytest.raises(ValueError):
            TiptoeConfig(kernel_backend="")

    def test_record_naming_unknown_backend_falls_back(self, caplog):
        """Tuned-with-compiler, served-without: a sidecar whose backend
        does not exist here must warn and serve reference defaults, not
        refuse to cold-start."""
        record = {
            "kernel_plan": {
                "ranking": {
                    "backend": "cuda-h100",
                    "limb_bits": 17,
                    "chunk_rows": 0,
                    "workers": 4,
                }
            }
        }
        with caplog.at_level("WARNING", logger="repro.core.services"):
            got = resolve_kernel_selection(TiptoeConfig(), record, "ranking")
        assert got == (None, {})
        assert any("cuda-h100" in r.message for r in caplog.records)

    def test_malformed_record_falls_back_under_auto(self, caplog):
        record = {"kernel_plan": {"ranking": {"backend": "reference"}}}
        with caplog.at_level("WARNING", logger="repro.core.services"):
            got = resolve_kernel_selection(TiptoeConfig(), record, "ranking")
        assert got == (None, {})
        assert any("malformed" in r.message for r in caplog.records)

    def test_malformed_record_keeps_explicit_backend(self, caplog):
        """An explicit config choice survives a rotten record: the
        backend is honored, only the tuned options are dropped."""
        record = {
            "kernel_plan": {"ranking": {"backend": "multiprocess"}}
        }
        config = TiptoeConfig(kernel_backend="multiprocess")
        with caplog.at_level("WARNING", logger="repro.core.services"):
            backend, opts = resolve_kernel_selection(
                config, record, "ranking"
            )
        assert backend == "multiprocess"
        assert opts == {}
        assert any("malformed" in r.message for r in caplog.records)
