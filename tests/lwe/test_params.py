"""Tests for parameter selection against the paper's Tables 11 and 12."""

import math

import pytest

from repro.lwe import params as P


class TestTableReproduction:
    """Our noise-budget formula should land near the paper's maxima."""

    @pytest.mark.parametrize("m", sorted(P.PAPER_TABLE_11))
    def test_table_11_within_25_percent(self, m):
        p_paper, n, sigma = P.PAPER_TABLE_11[m]
        p_ours = P.max_plaintext_modulus(m, 32, sigma)
        assert 0.75 * p_paper <= p_ours <= 1.45 * p_paper

    @pytest.mark.parametrize("m", sorted(P.PAPER_TABLE_12))
    def test_table_12_within_factor_two(self, m):
        p_paper, n, sigma = P.PAPER_TABLE_12[m]
        p_ours = P.max_plaintext_modulus(m, 64, sigma)
        assert p_paper / 2 <= p_ours <= p_paper * 2

    def test_plaintext_modulus_decreases_with_upload_dim(self):
        mods = [P.max_plaintext_modulus(2**k, 32, 6.4) for k in range(13, 21)]
        assert mods == sorted(mods, reverse=True)


class TestSecurityEstimate:
    def test_paper_anchors_are_at_least_128_bits(self):
        assert P.estimate_security_bits(1408, 32, 6.4) >= 128
        assert P.estimate_security_bits(2048, 64, 81920.0) >= 128

    def test_toy_parameters_flagged_insecure(self):
        toy = P.select_params(32, 2**13, P.SecurityLevel.TOY)
        assert toy.security_bits() < 32

    def test_monotone_in_dimension(self):
        assert P.estimate_security_bits(2048, 64, 81920.0) > (
            P.estimate_security_bits(1024, 64, 81920.0)
        )


class TestLweParams:
    def test_select_params_yields_power_of_two_plaintext(self):
        cfg = P.select_params(32, 2**14)
        assert cfg.p & (cfg.p - 1) == 0
        assert cfg.q == 2**32
        assert cfg.delta * cfg.p == cfg.q

    def test_entry_bound_allows_larger_plaintext(self):
        loose = P.select_params(64, 2**16, entry_bound=8.0)
        tight = P.select_params(64, 2**16)
        assert loose.p >= tight.p

    def test_validation_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            P.LweParams(n=64, q_bits=32, p=3, sigma=6.4, m=16)
        with pytest.raises(ValueError):
            P.LweParams(n=64, q_bits=16, p=4, sigma=6.4, m=16)
        with pytest.raises(ValueError):
            P.LweParams(n=64, q_bits=32, p=4, sigma=-1.0, m=16)
        with pytest.raises(ValueError):
            P.LweParams(n=0, q_bits=32, p=4, sigma=6.4, m=16)

    def test_byte_accounting(self):
        cfg = P.select_params(64, 2**13)
        assert cfg.bytes_per_element == 8
        assert cfg.ciphertext_bytes(10) == 80

    def test_tail_cut_matches_two_to_minus_forty(self):
        # P(|N(0,1)| > z) = 2 exp(-z^2/2) upper bound at z should be <= 2^-40.
        z = P.TAIL_CUT_2_NEG_40
        assert 2.0 * math.exp(-z * z / 2.0) <= 2.0**-40 * 1.01


def test_floor_power_of_two():
    assert P.floor_power_of_two(1) == 1
    assert P.floor_power_of_two(1023) == 512
    assert P.floor_power_of_two(1024) == 1024
    with pytest.raises(ValueError):
        P.floor_power_of_two(0)
