"""Tests for the SimplePIR-style Regev LHE scheme."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lwe import LweParams, RegevScheme
from repro.lwe.sampling import seeded_rng


def make_scheme(q_bits=32, m=64, p=256, n=128, sigma=6.4, seed=b"A" * 32):
    params = LweParams(n=n, q_bits=q_bits, p=p, sigma=sigma, m=m)
    return RegevScheme(params=params, a_seed=seed)


@pytest.mark.parametrize("q_bits", [32, 64])
class TestRoundTrip:
    def test_identity_matrix_recovers_message(self, q_bits):
        scheme = make_scheme(q_bits=q_bits)
        rng = seeded_rng(7)
        sk = scheme.gen_secret(rng)
        msg = rng.integers(0, scheme.params.p, scheme.params.m)
        ct = scheme.encrypt(sk, msg, rng)
        eye = np.eye(scheme.params.m, dtype=np.int64)
        hint = scheme.preprocess(eye)
        answer = scheme.apply(eye, ct)
        assert np.array_equal(scheme.decrypt(sk, hint, answer), msg)

    def test_matrix_apply_matches_plaintext_product(self, q_bits):
        scheme = make_scheme(q_bits=q_bits, m=48, p=2**12)
        rng = seeded_rng(8)
        sk = scheme.gen_secret(rng)
        msg = rng.integers(0, 4, scheme.params.m)  # small, avoids overflow
        matrix = rng.integers(0, 4, size=(20, scheme.params.m))
        ct = scheme.encrypt(sk, msg, rng)
        hint = scheme.preprocess(matrix)
        answer = scheme.apply(matrix, ct)
        got = scheme.decrypt(sk, hint, answer)
        want = (matrix @ msg) % scheme.params.p
        assert np.array_equal(got, want)

    def test_signed_messages_and_matrices(self, q_bits):
        scheme = make_scheme(q_bits=q_bits, m=32, p=2**14)
        rng = seeded_rng(9)
        sk = scheme.gen_secret(rng)
        msg = rng.integers(-8, 8, scheme.params.m)
        matrix = rng.integers(-8, 8, size=(10, scheme.params.m))
        ct = scheme.encrypt(sk, msg, rng)
        hint = scheme.preprocess(matrix)
        answer = scheme.apply(matrix, ct)
        got = scheme.decrypt_centered(sk, hint, answer)
        assert np.array_equal(got, matrix @ msg)


class TestSecurityShape:
    """Structural checks backing the query-privacy argument (SS2, App. D)."""

    def test_ciphertext_is_fixed_size_regardless_of_message(self):
        scheme = make_scheme()
        rng = seeded_rng(10)
        sk = scheme.gen_secret(rng)
        zeros = scheme.encrypt(sk, np.zeros(scheme.params.m, dtype=int), rng)
        dense = scheme.encrypt(
            sk, np.full(scheme.params.m, scheme.params.p - 1), rng
        )
        assert zeros.upload_bytes == dense.upload_bytes

    def test_ciphertexts_of_same_message_differ(self):
        scheme = make_scheme()
        rng = seeded_rng(11)
        sk = scheme.gen_secret(rng)
        msg = np.ones(scheme.params.m, dtype=int)
        c1 = scheme.encrypt(sk, msg, rng)
        c2 = scheme.encrypt(sk, msg, rng)
        assert not np.array_equal(c1.c, c2.c)

    def test_ciphertext_marginals_look_uniform(self):
        # Coarse sanity check: mean of ciphertext words over many
        # encryptions of a fixed message is near q/2.
        scheme = make_scheme(m=256)
        rng = seeded_rng(12)
        sk = scheme.gen_secret(rng)
        msg = np.zeros(scheme.params.m, dtype=int)
        words = np.concatenate(
            [scheme.encrypt(sk, msg, rng).c for _ in range(8)]
        ).astype(np.float64)
        mean = words.mean() / 2**32
        assert 0.45 < mean < 0.55


class TestValidation:
    def test_wrong_message_shape_rejected(self):
        scheme = make_scheme()
        sk = scheme.gen_secret(seeded_rng(0))
        with pytest.raises(ValueError):
            scheme.encrypt(sk, np.zeros(3, dtype=int), seeded_rng(0))

    def test_wrong_matrix_shape_rejected(self):
        scheme = make_scheme()
        with pytest.raises(ValueError):
            scheme.preprocess(np.zeros((4, 3), dtype=int))

    def test_secret_shape_enforced(self):
        scheme = make_scheme()
        from repro.lwe.regev import SecretKey

        with pytest.raises(ValueError):
            SecretKey(s=np.zeros(3, dtype=np.uint32), params=scheme.params)


class TestCostHooks:
    def test_hint_and_answer_sizes(self):
        scheme = make_scheme(q_bits=64, m=100, p=2**16, n=64)
        assert scheme.hint_bytes(10) == 10 * 64 * 8
        assert scheme.answer_bytes(10) == 80
        assert scheme.apply_word_ops(10) == 2 * 10 * 100
        assert scheme.preprocess_word_ops(10) == 2 * 10 * 100 * 64

    def test_matrix_a_is_deterministic_in_seed(self):
        s1 = make_scheme(seed=b"B" * 32)
        s2 = make_scheme(seed=b"B" * 32)
        assert np.array_equal(s1.a, s2.a)


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_linear_homomorphism_property(seed, row_seed):
    """Dec(Apply(M, Enc(v))) == M v mod p for random small inputs."""
    scheme = make_scheme(q_bits=64, m=24, p=2**16, n=96)
    rng = seeded_rng(seed)
    sk = scheme.gen_secret(rng)
    msg = rng.integers(-15, 16, scheme.params.m)
    matrix = seeded_rng(row_seed).integers(-15, 16, size=(6, scheme.params.m))
    ct = scheme.encrypt(sk, msg, rng)
    got = scheme.decrypt_centered(
        sk, scheme.preprocess(matrix), scheme.apply(matrix, ct)
    )
    assert np.array_equal(got, matrix @ msg)
