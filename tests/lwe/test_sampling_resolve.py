"""resolve_rng / set_default_seed: the sanctioned rng=None fallback."""

import numpy as np
import pytest

from repro.lwe import sampling


@pytest.fixture(autouse=True)
def _clear_replay_seed():
    yield
    sampling.set_default_seed(None)


class TestResolveRng:
    def test_explicit_rng_wins(self):
        rng = sampling.seeded_rng(7)
        assert sampling.resolve_rng(rng) is rng
        sampling.set_default_seed(123)
        assert sampling.resolve_rng(rng) is rng

    def test_default_is_fresh_entropy(self):
        a = sampling.resolve_rng(None).integers(0, 1 << 62)
        b = sampling.resolve_rng(None).integers(0, 1 << 62)
        # 2^-62 collision probability: two fresh streams differ
        assert a != b

    def test_fallback_seed_is_deterministic(self):
        a = sampling.resolve_rng(None, fallback_seed=0).integers(0, 1 << 62)
        b = sampling.resolve_rng(None, fallback_seed=0).integers(0, 1 << 62)
        assert a == b

    def test_replay_seed_overrides_fallback_seed(self):
        sampling.set_default_seed(99)
        via_replay = sampling.resolve_rng(None, fallback_seed=0)
        reference = sampling.seeded_rng(99)
        assert (
            via_replay.integers(0, 1 << 62) == reference.integers(0, 1 << 62)
        )

    def test_set_default_seed_none_restores_entropy(self):
        sampling.set_default_seed(5)
        sampling.set_default_seed(None)
        a = sampling.resolve_rng(None).integers(0, 1 << 62)
        b = sampling.resolve_rng(None).integers(0, 1 << 62)
        assert a != b


class TestEndToEndReplay:
    def test_keygen_replays_under_a_process_seed(self):
        """set_default_seed makes rng=None keygen bit-identical."""
        from repro.lwe.params import LweParams
        from repro.lwe.regev import RegevScheme

        params = LweParams(n=16, q_bits=32, p=16, sigma=3.2, m=8)
        scheme = RegevScheme(params=params, a_seed=b"\x01" * 32)

        sampling.set_default_seed(2024)
        first = scheme.gen_secret(None).s
        sampling.set_default_seed(2024)
        second = scheme.gen_secret(None).s
        np.testing.assert_array_equal(first, second)

    def test_keygen_differs_without_a_process_seed(self):
        from repro.lwe.params import LweParams
        from repro.lwe.regev import RegevScheme

        params = LweParams(n=64, q_bits=32, p=16, sigma=3.2, m=8)
        scheme = RegevScheme(params=params, a_seed=b"\x01" * 32)
        first = scheme.gen_secret(None).s
        second = scheme.gen_secret(None).s
        assert not np.array_equal(first, second)
