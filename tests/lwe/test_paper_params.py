"""Functional check of the PAPER_128 parameter set (Appendix C).

The fast tests run at toy lattice dimensions; this module runs the
actual ranking-layer cryptography once at the paper's parameters
(n = 2048, q = 2^64, sigma = 81920, p = 2^17, 4-bit embeddings) to
confirm the production parameter set decrypts correctly with the
promised noise margin.
"""

import numpy as np
import pytest

from repro.lwe import LweParams, RegevScheme
from repro.lwe.params import SecurityLevel, select_params
from repro.lwe.sampling import seeded_rng


@pytest.fixture(scope="module")
def paper_scheme():
    cfg = select_params(
        64, 4096, SecurityLevel.PAPER_128, p=2**17
    )
    params = LweParams(n=cfg.n, q_bits=64, p=2**17, sigma=cfg.sigma, m=4096)
    return RegevScheme(params=params, a_seed=b"X" * 32)


class TestPaperParameters:
    def test_dimensions_match_appendix_c(self, paper_scheme):
        params = paper_scheme.params
        assert params.n == 2048
        assert params.sigma == 81920.0
        assert params.p == 2**17
        assert params.security_bits() >= 128

    def test_ranking_roundtrip_with_4bit_embeddings(self, paper_scheme):
        scheme = paper_scheme
        rng = seeded_rng(0)
        sk = scheme.gen_secret(rng)
        # 4-bit signed entries, as the quantized embeddings are.
        msg = rng.integers(-16, 17, scheme.params.m)
        matrix = rng.integers(-16, 17, size=(64, scheme.params.m))
        ct = scheme.encrypt(sk, msg, rng)
        got = scheme.decrypt_centered(
            sk, scheme.preprocess(matrix), scheme.apply(matrix, ct)
        )
        assert np.array_equal(got, matrix @ msg)

    def test_noise_margin_is_comfortable(self, paper_scheme):
        """Observed noise should sit far below the Delta/2 threshold."""
        scheme = paper_scheme
        rng = seeded_rng(1)
        sk = scheme.gen_secret(rng)
        msg = rng.integers(-16, 17, scheme.params.m)
        matrix = rng.integers(-16, 17, size=(32, scheme.params.m))
        ct = scheme.encrypt(sk, msg, rng)
        noisy = scheme.decrypt_noisy(
            sk, scheme.preprocess(matrix), scheme.apply(matrix, ct)
        )
        q = scheme.params.q
        delta = scheme.params.delta
        expected = (matrix.astype(object) @ msg.astype(object)) % scheme.params.p
        encoded = (np.array(expected, dtype=object) * delta) % q
        worst = 0
        for got, want in zip(noisy.astype(object), encoded):
            d = (int(got) - int(want)) % q
            d = d - q if d >= q // 2 else d
            worst = max(worst, abs(d))
        assert worst < delta // 4  # at least 2x headroom below Delta/2
