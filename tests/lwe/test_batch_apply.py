"""Property tests for the batched Apply plane (stacked GEMM kernels).

The batch plane's whole contract is one sentence: column i of a
stacked product is bit-identical to the sequential product of column
i.  Both paths are exact mod-2^k ring arithmetic, so equality is
exact -- these tests assert ``array_equal``, never ``allclose`` --
over random shapes, moduli, entry bounds, and batch widths including
Q=1 and ragged tails.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lwe import LweParams, modular
from repro.lwe import backends as kernel_backends
from repro.lwe.regev import RegevScheme, stack_ciphertexts
from repro.lwe.sampling import seeded_rng


@st.composite
def stacked_cases(draw):
    q_bits = draw(st.sampled_from([32, 64]))
    rows = draw(st.integers(1, 24))
    cols = draw(st.integers(1, 24))
    batch = draw(st.integers(1, 7))
    bound = draw(st.sampled_from([1, 8, 255]))
    seed = draw(st.integers(0, 2**32 - 1))
    return q_bits, rows, cols, batch, bound, seed


class TestStackedPlan:
    @given(stacked_cases())
    @settings(max_examples=40, deadline=None)
    def test_columns_match_sequential_matmul(self, case):
        q_bits, rows, cols, batch, bound, seed = case
        rng = seeded_rng(seed)
        matrix = rng.integers(-bound, bound + 1, size=(rows, cols))
        stacked = modular.to_ring(
            rng.integers(0, 1 << 31, size=(cols, batch)), q_bits
        )
        plan = modular.StackedPlan(matrix, q_bits)
        got = plan.matmul(stacked)
        assert got.shape == (rows, batch)
        assert got.dtype == modular.dtype_for(q_bits)
        for i in range(batch):
            want = modular.matmul(
                modular.to_ring(matrix, q_bits), stacked[:, i], q_bits
            )
            assert np.array_equal(got[:, i], want)

    @given(stacked_cases())
    @settings(max_examples=20, deadline=None)
    def test_helper_equals_plan(self, case):
        q_bits, rows, cols, batch, bound, seed = case
        rng = seeded_rng(seed)
        matrix = rng.integers(-bound, bound + 1, size=(rows, cols))
        stacked = modular.to_ring(
            rng.integers(0, 1 << 31, size=(cols, batch)), q_bits
        )
        plan = modular.StackedPlan(matrix, q_bits)
        assert np.array_equal(
            modular.stacked_matmul(matrix, stacked, q_bits),
            plan.matmul(stacked),
        )

    def test_large_entries_fall_back_to_integer_path(self):
        """Entries too big for exact float limbs: correct, just slower."""
        rng = seeded_rng(3)
        matrix = rng.integers(0, 1 << 63, size=(5, 64), dtype=np.uint64)
        plan = modular.StackedPlan(matrix, 64)
        assert not plan.uses_blas
        stacked = rng.integers(0, 1 << 63, size=(64, 3), dtype=np.uint64)
        got = plan.matmul(stacked)
        for i in range(3):
            want = modular.matmul(matrix, stacked[:, i], 64)
            assert np.array_equal(got[:, i], want)

    def test_small_entries_take_the_blas_path(self):
        """Ranking-shaped entries (4-bit quantized) must hit BLAS."""
        rng = seeded_rng(4)
        matrix = rng.integers(-8, 9, size=(100, 512))
        plan = modular.StackedPlan(matrix, 32)
        assert plan.uses_blas
        assert plan.limb_bits >= modular.MIN_LIMB_BITS

    def test_rejects_non_matrix_plan(self):
        with pytest.raises(ValueError):
            modular.StackedPlan(np.arange(4), 32)

    def test_rejects_mismatched_stack(self):
        plan = modular.StackedPlan(np.ones((3, 4), dtype=np.int64), 32)
        with pytest.raises(ValueError):
            plan.matmul(modular.to_ring(np.ones((5, 2), dtype=np.int64), 32))
        with pytest.raises(ValueError):
            plan.matmul(modular.to_ring(np.ones(4, dtype=np.int64), 32))


class TestBackendBitIdentity:
    """Every registered backend computes *the same bits* as
    ``modular.matmul`` -- the seam contract that makes backend choice a
    pure deployment knob (DESIGN.md, "Kernel plane")."""

    @given(stacked_cases())
    @settings(max_examples=8, deadline=None)
    def test_all_backends_match_sequential(self, case):
        q_bits, rows, cols, batch, bound, seed = case
        rng = seeded_rng(seed)
        matrix = modular.to_ring(
            rng.integers(-bound, bound + 1, size=(rows, cols)), q_bits
        )
        stacked = modular.to_ring(
            rng.integers(0, 1 << 31, size=(cols, batch)), q_bits
        )
        want = modular.matmul(matrix, stacked, q_bits)
        for name in kernel_backends.backend_names():
            plan = kernel_backends.get_backend(name).plan(
                matrix, q_bits, workers=2
            )
            try:
                got = plan.matmul(stacked)
            finally:
                plan.close()
            assert got.dtype == want.dtype, name
            assert np.array_equal(got, want), name

    @pytest.mark.parametrize(
        "name", ["reference", "multiprocess", "numba", "cnative"]
    )
    def test_integer_fallback_regime(self, name):
        """Entries ~2^45 defeat exact float limbs; every backend must
        detect that and stay exact on the integer path."""
        rng = seeded_rng(11)
        matrix = rng.integers(0, 1 << 45, size=(6, 32), dtype=np.uint64)
        stacked = rng.integers(0, 1 << 63, size=(32, 4), dtype=np.uint64)
        want = modular.matmul(matrix, stacked, 64)
        plan = kernel_backends.get_backend(name).plan(matrix, 64, workers=2)
        try:
            assert np.array_equal(plan.matmul(stacked), want)
        finally:
            plan.close()

    @pytest.mark.parametrize("batch", [1, 3, 5])
    def test_ragged_batches_through_multiprocess(self, batch):
        rng = seeded_rng(12)
        matrix = rng.integers(-8, 9, size=(33, 20))
        ring = modular.to_ring(matrix, 32)
        stacked = modular.to_ring(
            rng.integers(0, 1 << 31, size=(20, batch)), 32
        )
        plan = kernel_backends.get_backend("multiprocess").plan(
            matrix, 32, workers=2
        )
        try:
            got = plan.matmul(stacked)
        finally:
            plan.close()
        assert np.array_equal(got, modular.matmul(ring, stacked, 32))

    @pytest.mark.parametrize("batch", [1, 3, 5])
    def test_ragged_batches_through_cnative(self, batch):
        """Batch widths that do not divide the thread count -- the C
        kernel's row partition must stay exact on every shape.  On a
        compiler-less host ``get_backend`` hands back reference, and
        the assertion still holds (the seam contract)."""
        rng = seeded_rng(14)
        matrix = rng.integers(-8, 9, size=(33, 20))
        ring = modular.to_ring(matrix, 32)
        stacked = modular.to_ring(
            rng.integers(0, 1 << 31, size=(20, batch)), 32
        )
        plan = kernel_backends.get_backend("cnative").plan(
            matrix, 32, workers=3
        )
        try:
            got = plan.matmul(stacked)
        finally:
            plan.close()
        assert np.array_equal(got, modular.matmul(ring, stacked, 32))

    def test_matvec_matches_matmul_column(self):
        rng = seeded_rng(13)
        matrix = rng.integers(-8, 9, size=(17, 23))
        vec = modular.to_ring(rng.integers(0, 1 << 31, size=23), 32)
        for name in kernel_backends.backend_names():
            plan = kernel_backends.get_backend(name).plan(
                matrix, 32, workers=2
            )
            try:
                got = plan.matvec(vec)
                col = plan.matmul(vec.reshape(-1, 1))[:, 0]
            finally:
                plan.close()
            assert np.array_equal(got, col), name


@pytest.fixture(scope="module")
def regev():
    params = LweParams(n=16, q_bits=32, p=256, sigma=3.2, m=40)
    scheme = RegevScheme(params=params, a_seed=b"B" * 32)
    rng = seeded_rng(0)
    sk = scheme.gen_secret(rng)
    cts = [
        scheme.encrypt(sk, rng.integers(0, 256, size=40), rng)
        for _ in range(6)
    ]
    matrix = rng.integers(-8, 9, size=(30, 40))
    return scheme, sk, matrix, cts


class TestRegevApplyBatch:
    @pytest.mark.parametrize("batch", [1, 2, 5, 6])
    def test_bit_identical_to_apply(self, regev, batch):
        """Every batch width, including Q=1 and the ragged tail."""
        scheme, _, matrix, cts = regev
        got = scheme.apply_batch(matrix, cts[:batch])
        assert got.shape == (30, batch)
        for i in range(batch):
            assert np.array_equal(got[:, i], scheme.apply(matrix, cts[i]))

    def test_accepts_prestacked_matrix_and_plan(self, regev):
        scheme, _, matrix, cts = regev
        plan = scheme.batch_plan(matrix)
        stacked = stack_ciphertexts(cts)
        got = scheme.apply_batch(None, stacked, plan=plan)
        assert np.array_equal(got, scheme.apply_batch(matrix, cts))

    def test_batch_answers_still_decrypt(self, regev):
        scheme, sk, matrix, cts = regev
        hint = scheme.preprocess(matrix)
        got = scheme.apply_batch(matrix, cts)
        for i, ct in enumerate(cts):
            want = scheme.decrypt(sk, hint, scheme.apply(matrix, ct))
            assert np.array_equal(
                scheme.decrypt(sk, hint, got[:, i]), want
            )

    @pytest.mark.parametrize(
        "backend", ["reference", "multiprocess", "numba", "cnative"]
    )
    def test_batch_answers_decrypt_through_every_backend(
        self, regev, backend
    ):
        """End to end: encrypt, apply through a named backend plan,
        decrypt -- the plaintexts must match the sequential path."""
        scheme, sk, matrix, cts = regev
        hint = scheme.preprocess(matrix)
        plan = scheme.batch_plan(matrix, backend=backend, workers=2)
        try:
            got = scheme.apply_batch(
                None, stack_ciphertexts(cts), plan=plan
            )
        finally:
            plan.close()
        for i, ct in enumerate(cts):
            want = scheme.decrypt(sk, hint, scheme.apply(matrix, ct))
            assert np.array_equal(
                scheme.decrypt(sk, hint, got[:, i]), want
            ), backend

    def test_requires_matrix_or_plan(self, regev):
        scheme, _, _, cts = regev
        with pytest.raises(ValueError):
            scheme.apply_batch(None, cts)

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            stack_ciphertexts([])

    def test_mixed_params_rejected(self, regev):
        scheme, _, _, cts = regev
        other_params = LweParams(n=16, q_bits=64, p=256, sigma=3.2, m=40)
        other = RegevScheme(params=other_params, a_seed=b"C" * 32)
        rng = seeded_rng(9)
        alien = other.encrypt(
            other.gen_secret(rng), rng.integers(0, 256, size=40), rng
        )
        with pytest.raises(ValueError):
            stack_ciphertexts([cts[0], alien])
