"""Statistical validation of the noise-budget analysis (Appendix C).

The parameter selection promises 2^-40 per-entry correctness failure;
we cannot observe 2^-40 events, but the *model* behind it -- answer
noise is Gaussian-ish with std sigma * entry_bound * sqrt(m/3) -- is
directly checkable, as is the failure cliff when parameters violate
the budget.
"""

import numpy as np
import pytest

from repro.lwe import LweParams, RegevScheme
from repro.lwe.params import max_plaintext_modulus, noise_bound
from repro.lwe.sampling import seeded_rng


def measured_noise(scheme, sk, matrix, msg, rng):
    """Exact per-entry noise of one Apply: (a - H s) - Delta * (M v)."""
    ct = scheme.encrypt(sk, msg, rng)
    hint = scheme.preprocess(matrix)
    answer = scheme.apply(matrix, ct)
    noisy = scheme.decrypt_noisy(sk, hint, answer).astype(np.int64)
    q = scheme.params.q
    expected = (matrix.astype(object) @ msg.astype(object)) % scheme.params.p
    encoded = (np.array(expected, dtype=object) * scheme.params.delta) % q
    diff = (noisy.astype(object) - encoded) % q
    return np.array(
        [int(d) - q if int(d) >= q // 2 else int(d) for d in diff],
        dtype=np.float64,
    )


class TestNoiseModel:
    def test_measured_noise_matches_predicted_std(self):
        params = LweParams(n=64, q_bits=64, p=2**16, sigma=40.0, m=256)
        scheme = RegevScheme(params=params, a_seed=b"N" * 32)
        rng = seeded_rng(0)
        sk = scheme.gen_secret(rng)
        samples = []
        for trial in range(6):
            matrix = rng.integers(0, 8, size=(64, params.m))
            msg = rng.integers(0, params.p, params.m)
            samples.append(measured_noise(scheme, sk, matrix, msg, rng))
        noise = np.concatenate(samples)
        # Predicted std for entries uniform in [0, 8): sigma*sqrt(m*E[d^2]).
        predicted = params.sigma * np.sqrt(params.m * np.mean(
            np.arange(8) ** 2
        ))
        assert 0.5 * predicted < noise.std() < 1.6 * predicted

    def test_no_failures_within_budget(self):
        params = LweParams(n=64, q_bits=32, p=256, sigma=6.4, m=128)
        scheme = RegevScheme(params=params, a_seed=b"O" * 32)
        rng = seeded_rng(1)
        sk = scheme.gen_secret(rng)
        for trial in range(10):
            matrix = rng.integers(0, params.p, size=(32, params.m))
            msg = rng.integers(0, params.p, params.m)
            ct = scheme.encrypt(sk, msg, rng)
            got = scheme.decrypt(
                sk, scheme.preprocess(matrix), scheme.apply(matrix, ct)
            )
            want = (matrix @ msg) % params.p
            assert np.array_equal(got, want)

    def test_violating_the_budget_causes_failures(self):
        """Blow way past the Table 11 noise budget: decryption breaks."""
        m = 128
        p_max = max_plaintext_modulus(m, 32, 6.4)
        # A plaintext modulus ~64x beyond the budget.
        p_bad = 1 << (int(p_max).bit_length() + 5)
        params = LweParams(n=64, q_bits=32, p=p_bad, sigma=6.4, m=m)
        scheme = RegevScheme(params=params, a_seed=b"P" * 32)
        rng = seeded_rng(2)
        sk = scheme.gen_secret(rng)
        failures = 0
        for trial in range(5):
            matrix = rng.integers(0, p_bad, size=(32, m))
            msg = rng.integers(0, p_bad, m)
            ct = scheme.encrypt(sk, msg, rng)
            got = scheme.decrypt(
                sk, scheme.preprocess(matrix), scheme.apply(matrix, ct)
            )
            failures += int(not np.array_equal(got, (matrix @ msg) % p_bad))
        assert failures > 0

    def test_noise_bound_formula_is_conservative(self):
        """The analytic bound should upper-bound observed maxima."""
        params = LweParams(n=64, q_bits=64, p=2**16, sigma=20.0, m=256)
        scheme = RegevScheme(params=params, a_seed=b"Q" * 32)
        rng = seeded_rng(3)
        sk = scheme.gen_secret(rng)
        bound = noise_bound(params.m, params.sigma, entry_bound=8.0)
        worst = 0.0
        for trial in range(5):
            matrix = rng.integers(-8, 8, size=(64, params.m))
            msg = rng.integers(0, params.p, params.m)
            worst = max(
                worst,
                np.abs(measured_noise(scheme, sk, matrix, msg, rng)).max(),
            )
        assert worst < bound


class TestModSwitchNoise:
    def test_switch_noise_is_sublinear_in_dimension(self):
        """Mod-switch adds at most ~(n+1)/2 worst-case error (SS6.2)."""
        from repro.lwe import modular

        rng = seeded_rng(4)
        n = 256
        t = 4294967291
        hint = rng.integers(0, 1 << 63, size=(200, n), dtype=np.uint64)
        s = rng.integers(-1, 2, n).astype(np.int64)
        exact = (
            (hint.astype(object) @ s.astype(object)) % (1 << 64)
        )
        switched_hint = modular.mod_switch(hint, 64, t)
        switched_product = (
            switched_hint.astype(object) @ s.astype(object)
        ) % t
        # Scale the exact product and compare.
        want = [
            round(int(x) * t / (1 << 64)) % t for x in exact
        ]
        diffs = []
        for got, expect in zip(switched_product, want):
            d = (int(got) - int(expect)) % t
            d = d - t if d >= t // 2 else d
            diffs.append(abs(d))
        assert max(diffs) <= (n + 1)
