"""The native compiled backend: build cache, fallback, lifecycle.

Bit-identity of the C kernel across the Hypothesis case space lives in
``test_batch_apply.py`` (cnative is a registered backend, so the
cross-backend property suite covers it automatically).  This file
tests what is unique to a *compiled* backend: the content-hashed build
cache, the no-compiler / failed-build degradation to reference (a host
without ``cc`` must pass the whole suite), the forced-off environment
switch, and the plan lifecycle around a dlopen-ed library.

Everything here runs on compiler-less hosts too: tests that need a
working extension first check ``available`` and skip cleanly.
"""

import numpy as np
import pytest

from repro.lwe import modular
from repro.lwe.backends import KernelUnavailable, get_backend, register_backend
from repro.lwe.backends import cnative as cnative_mod
from repro.lwe.backends.cnative import CNativeBackend
from repro.lwe.sampling import seeded_rng


@pytest.fixture
def small_matrix():
    rng = seeded_rng(31)
    return rng.integers(-8, 9, size=(12, 10))


def _native_or_skip() -> CNativeBackend:
    backend = CNativeBackend()
    if not backend.available:
        pytest.skip(f"no native toolchain here: {backend.build_error}")
    return backend


class TestAvailabilityFallback:
    def test_disable_env_forces_unavailable(self, monkeypatch):
        monkeypatch.setenv(cnative_mod.DISABLE_ENV, "1")
        backend = CNativeBackend()
        assert not backend.available
        assert cnative_mod.DISABLE_ENV in (backend.build_error or "")
        with pytest.raises(KernelUnavailable):
            backend.plan(np.ones((2, 2), dtype=np.int64), 32)

    def test_registry_falls_back_to_reference(
        self, monkeypatch, small_matrix
    ):
        """The serving path on a host where the build cannot happen:
        ``get_backend("cnative")`` must hand back the reference backend
        and the answer bits must not change."""
        monkeypatch.setenv(cnative_mod.DISABLE_ENV, "1")
        original = get_backend("cnative")
        register_backend(CNativeBackend())  # fresh, sees the env switch
        try:
            backend = get_backend("cnative")
            assert backend.name == "reference"
            with backend.plan(small_matrix, 32) as plan:
                stacked = modular.to_ring(
                    np.ones((10, 3), dtype=np.int64), 32
                )
                want = modular.matmul(
                    modular.to_ring(small_matrix, 32), stacked, 32
                )
                assert np.array_equal(plan.matmul(stacked), want)
        finally:
            register_backend(original)

    def test_no_compiler_degrades_not_crashes(self, monkeypatch, tmp_path):
        """CC pointing at nothing + a cold cache: the build must fail
        as KernelUnavailable with an actionable message, never an
        ImportError or a distutils traceback."""
        monkeypatch.delenv(cnative_mod.DISABLE_ENV, raising=False)
        monkeypatch.setenv("CC", "no-such-compiler-anywhere")
        monkeypatch.setenv(cnative_mod.CACHE_ENV, str(tmp_path / "cold"))
        backend = CNativeBackend(cache_root=tmp_path / "cold")
        assert not backend.available
        assert "compiler" in backend.build_error
        with pytest.raises(KernelUnavailable, match="unavailable"):
            backend.plan(np.ones((2, 2), dtype=np.int64), 32)

    def test_memoized_outcome_is_per_instance(self, monkeypatch, tmp_path):
        monkeypatch.setenv("CC", "no-such-compiler-anywhere")
        broken = CNativeBackend(cache_root=tmp_path / "cold2")
        assert not broken.available
        assert not broken.available  # second probe: memoized, no rebuild


class TestBuildCache:
    def test_second_build_reuses_the_cached_object(self, tmp_path):
        _native_or_skip()
        root = tmp_path / "cache"
        cnative_mod.build_native_module(root)
        key_dir = root / cnative_mod._module_key()
        built = sorted(p.name for p in key_dir.glob("*.so"))
        assert len(built) == 1
        mtime = (key_dir / built[0]).stat().st_mtime_ns
        cnative_mod.build_native_module(root)  # must load, not rebuild
        assert (key_dir / built[0]).stat().st_mtime_ns == mtime

    def test_key_is_stable_within_a_process(self):
        assert cnative_mod._module_key() == cnative_mod._module_key()


class TestPlanLifecycle:
    def test_close_is_idempotent_and_final(self, small_matrix):
        backend = _native_or_skip()
        plan = backend.plan(small_matrix, 32, workers=2)
        stacked = modular.to_ring(np.ones((10, 2), dtype=np.int64), 32)
        assert plan.matmul(stacked).shape == (12, 2)
        plan.close()
        plan.close()
        with pytest.raises(KernelUnavailable):
            plan.matmul(stacked)
        with pytest.raises(KernelUnavailable):
            plan.matvec(stacked[:, 0])

    def test_metadata_matches_reference(self, small_matrix):
        backend = _native_or_skip()
        ref = get_backend("reference").plan(small_matrix, 32)
        try:
            with backend.plan(small_matrix, 32) as plan:
                assert plan.metadata() == ref.metadata()
                assert plan.backend_name == "cnative"
        finally:
            ref.close()

    def test_shape_mismatch_rejected(self, small_matrix):
        backend = _native_or_skip()
        with backend.plan(small_matrix, 32) as plan:
            with pytest.raises(ValueError):
                plan.matmul(
                    modular.to_ring(np.ones((7, 2), dtype=np.int64), 32)
                )
            with pytest.raises(ValueError):
                plan.matmul(modular.to_ring(np.ones(10, dtype=np.int64), 32))

    def test_empty_batch_short_circuits(self, small_matrix):
        backend = _native_or_skip()
        with backend.plan(small_matrix, 32) as plan:
            got = plan.matmul(
                modular.to_ring(np.empty((10, 0), dtype=np.int64), 32)
            )
            assert got.shape == (12, 0)

    def test_non_contiguous_column_slice_is_exact(self):
        """The fleet path: RankingWorker plans over ``matrix[:, lo:hi]``
        column views, which are not C-contiguous."""
        backend = _native_or_skip()
        rng = seeded_rng(33)
        full = modular.to_ring(rng.integers(-8, 9, size=(24, 40)), 32)
        view = full[:, 8:28]
        assert not view.flags.c_contiguous
        stacked = modular.to_ring(rng.integers(0, 1 << 31, size=(20, 4)), 32)
        want = modular.matmul(view, stacked, 32)
        with backend.plan(view, 32, workers=3) as plan:
            assert np.array_equal(plan.matmul(stacked), want)

    @pytest.mark.parametrize("q_bits", [32, 64])
    def test_more_threads_than_rows_stays_exact(self, q_bits):
        backend = _native_or_skip()
        rng = seeded_rng(34)
        matrix = rng.integers(-8, 9, size=(5, 16))
        ring = modular.to_ring(matrix, q_bits)
        stacked = modular.to_ring(
            rng.integers(0, 1 << 31, size=(16, 3)), q_bits
        )
        want = modular.matmul(ring, stacked, q_bits)
        with backend.plan(matrix, q_bits, workers=16) as plan:
            assert np.array_equal(plan.matmul(stacked), want)

    def test_sidecar_metadata_skips_the_entry_scan(self, small_matrix):
        """The precompute path: plan built from persisted metadata must
        equal the scan-derived plan bit for bit."""
        backend = _native_or_skip()
        scanned = backend.plan(small_matrix, 32)
        meta = scanned.metadata()
        restored = backend.plan(small_matrix, 32, metadata=meta)
        stacked = modular.to_ring(
            seeded_rng(35).integers(0, 1 << 31, size=(10, 4)), 32
        )
        try:
            assert restored.limb_bits == scanned.limb_bits
            assert np.array_equal(
                restored.matmul(stacked), scanned.matmul(stacked)
            )
        finally:
            scanned.close()
            restored.close()
