"""Property tests for the unsigned-ring helpers (tiptoe-lint satellite).

These pin the three contracts ``repro/lwe/modular.py`` promises and the
dtype lint rules assume:

* ``to_ring`` / ``centered`` are inverse bijections between centered
  representatives and Z_q, at both supported moduli;
* arithmetic wraps exactly at the modulus boundary (C-style unsigned
  semantics *are* reduction mod q);
* ``matmul`` accumulates inside the ring dtype -- never a float or
  wider upcast -- so a single integer product is the homomorphic eval.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lwe import modular

Q_BITS = st.sampled_from((32, 64))


def _centered_ints(q_bits: int):
    half = 1 << (q_bits - 1)
    return st.integers(min_value=-half, max_value=half - 1)


@st.composite
def centered_arrays(draw):
    q_bits = draw(Q_BITS)
    values = draw(
        st.lists(_centered_ints(q_bits), min_size=1, max_size=32)
    )
    return q_bits, values


@st.composite
def ring_arrays(draw):
    q_bits = draw(Q_BITS)
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << q_bits) - 1),
            min_size=1,
            max_size=32,
        )
    )
    return q_bits, values


class TestRoundTrip:
    @given(centered_arrays())
    def test_to_ring_then_centered_recovers_centered_reps(self, case):
        """centered(to_ring(v)) == v for v in [-q/2, q/2), both moduli."""
        q_bits, values = case
        arr = np.array(values, dtype=object)
        ring = modular.to_ring(arr, q_bits)
        back = modular.centered(ring, q_bits)
        assert back.dtype == modular.signed_dtype_for(q_bits)
        assert [int(x) for x in back] == values

    @given(ring_arrays())
    def test_centered_then_to_ring_is_identity_on_zq(self, case):
        """to_ring(centered(x)) == x for any ring element, both moduli."""
        q_bits, values = case
        arr = np.array(values, dtype=object)
        ring = modular.to_ring(arr, q_bits)
        back = modular.to_ring(modular.centered(ring, q_bits), q_bits)
        assert back.dtype == modular.dtype_for(q_bits)
        np.testing.assert_array_equal(back, ring)

    @given(Q_BITS)
    def test_round_trip_at_the_exact_boundaries(self, q_bits):
        half = 1 << (q_bits - 1)
        edge = [-half, -1, 0, 1, half - 1]
        ring = modular.to_ring(np.array(edge, dtype=object), q_bits)
        assert [int(x) for x in modular.centered(ring, q_bits)] == edge


class TestWraparound:
    @given(Q_BITS, st.integers(min_value=0, max_value=1 << 70))
    def test_to_ring_reduces_mod_q(self, q_bits, value):
        q = 1 << q_bits
        ring = modular.to_ring(np.array([value], dtype=object), q_bits)
        assert int(ring[0]) == value % q

    @given(ring_arrays(), st.data())
    def test_add_sub_wrap_exactly(self, case, data):
        q_bits, values = case
        q = 1 << q_bits
        other = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=q - 1),
                min_size=len(values),
                max_size=len(values),
            )
        )
        a = modular.to_ring(np.array(values, dtype=object), q_bits)
        b = modular.to_ring(np.array(other, dtype=object), q_bits)
        total = modular.add(a, b, q_bits)
        diff = modular.sub(a, b, q_bits)
        for x, y, s, d in zip(values, other, total, diff):
            assert int(s) == (x + y) % q
            assert int(d) == (x - y) % q

    @given(Q_BITS)
    def test_boundary_increment_wraps_to_zero(self, q_bits):
        q = 1 << q_bits
        top = modular.to_ring(np.array([q - 1], dtype=object), q_bits)
        one = modular.to_ring(np.array([1], dtype=object), q_bits)
        assert int(modular.add(top, one, q_bits)[0]) == 0
        zero = modular.to_ring(np.array([0], dtype=object), q_bits)
        assert int(modular.sub(zero, one, q_bits)[0]) == q - 1

    @given(
        Q_BITS,
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=-(1 << 40), max_value=1 << 40),
    )
    def test_scale_wraps_exactly(self, q_bits, value, c):
        q = 1 << q_bits
        a = modular.to_ring(np.array([value % q], dtype=object), q_bits)
        out = modular.scale(a, c, q_bits)
        assert int(out[0]) == ((value % q) * (c % q)) % q


class TestMatmulNeverUpcasts:
    """Regression for the modular.py contract the dtype rules enforce."""

    @settings(max_examples=25)
    @given(
        Q_BITS,
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.randoms(use_true_random=False),
    )
    def test_matmul_dtype_and_exactness(self, q_bits, n, m, k, pyrandom):
        q = 1 << q_bits
        a_rows = [[pyrandom.randrange(q) for _ in range(m)] for _ in range(n)]
        b_rows = [[pyrandom.randrange(q) for _ in range(k)] for _ in range(m)]
        a = modular.to_ring(np.array(a_rows, dtype=object), q_bits)
        b = modular.to_ring(np.array(b_rows, dtype=object), q_bits)
        out = modular.matmul(a, b, q_bits)
        # the accumulator stays in the ring dtype -- never float, never wider
        assert out.dtype == modular.dtype_for(q_bits)
        expected = [
            [
                sum(a_rows[i][j] * b_rows[j][l] for j in range(m)) % q
                for l in range(k)
            ]
            for i in range(n)
        ]
        assert [[int(x) for x in row] for row in out] == expected

    def test_matvec_dtype_at_both_moduli(self):
        for q_bits in modular.SUPPORTED_Q_BITS:
            dtype = modular.dtype_for(q_bits)
            a = np.full((3, 4), (1 << q_bits) - 1, dtype=object)
            v = np.full(4, (1 << q_bits) - 1, dtype=object)
            out = modular.matvec(
                modular.to_ring(a, q_bits), modular.to_ring(v, q_bits), q_bits
            )
            assert out.dtype == dtype

    def test_unsupported_q_bits_rejected(self):
        with pytest.raises(ValueError):
            modular.dtype_for(16)
        with pytest.raises(ValueError):
            modular.to_ring(np.array([1]), 48)
