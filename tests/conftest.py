"""Shared fixtures: a small corpus and a built engine."""

import numpy as np
import pytest

from repro import TiptoeConfig, TiptoeEngine
from repro.corpus import QueryBenchmark, SyntheticCorpus, SyntheticCorpusConfig


@pytest.fixture(scope="session")
def corpus():
    return SyntheticCorpus.generate(
        SyntheticCorpusConfig(
            num_docs=250, num_topics=8, vocab_size=400, seed=11
        )
    )


@pytest.fixture(scope="session")
def engine(corpus):
    return TiptoeEngine.build(
        corpus.texts(),
        corpus.urls(),
        TiptoeConfig(),
        rng=np.random.default_rng(0),
    )


@pytest.fixture(scope="session")
def query_benchmark(corpus):
    return QueryBenchmark.generate(corpus, 30, np.random.default_rng(1))
