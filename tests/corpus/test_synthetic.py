"""Tests for the synthetic corpus generator."""

import numpy as np
import pytest

from repro.corpus import SyntheticCorpus, SyntheticCorpusConfig
from repro.corpus.synthetic import make_vocabulary


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus.generate(
        SyntheticCorpusConfig(num_docs=200, num_topics=8, vocab_size=400, seed=1)
    )


class TestVocabulary:
    def test_distinct_words(self):
        words = make_vocabulary(100, np.random.default_rng(0))
        assert len(set(words)) == 100

    def test_words_are_tokenizable(self):
        words = make_vocabulary(50, np.random.default_rng(1))
        assert all(w.isalpha() and w.islower() and len(w) >= 4 for w in words)


class TestGeneration:
    def test_deterministic_under_seed(self):
        c1 = SyntheticCorpus.generate(SyntheticCorpusConfig(num_docs=20, seed=7))
        c2 = SyntheticCorpus.generate(SyntheticCorpusConfig(num_docs=20, seed=7))
        assert c1.texts() == c2.texts()
        assert c1.urls() == c2.urls()

    def test_document_count_and_ids(self, corpus):
        assert corpus.num_docs == 200
        assert [d.doc_id for d in corpus.documents] == list(range(200))

    def test_topic_mixtures_are_distributions(self, corpus):
        latent = corpus.latent_vectors()
        assert latent.shape == (200, 8)
        assert np.allclose(latent.sum(axis=1), 1.0)
        assert (latent >= 0).all()

    def test_entity_fraction_respected(self, corpus):
        frac = len(corpus.documents_with_entities()) / corpus.num_docs
        assert 0.2 <= frac <= 0.4

    def test_entities_are_rare_strings(self, corpus):
        entities = [d.entity for d in corpus.documents_with_entities()]
        assert len(set(entities)) == len(entities)  # globally unique
        for doc in corpus.documents_with_entities():
            assert doc.entity in doc.text

    def test_urls_look_like_urls(self, corpus):
        for url in corpus.urls():
            assert url.startswith("https://www.")
            assert len(url) < 200

    def test_same_topic_docs_share_more_vocabulary(self, corpus):
        """The property embeddings rely on: topical lexical overlap."""

        def overlap(a, b):
            sa, sb = set(a.text.split()), set(b.text.split())
            return len(sa & sb) / max(1, min(len(sa), len(sb)))

        latent = corpus.latent_vectors()
        sims = latent @ latent.T
        same, diff = [], []
        for i in range(0, 60, 2):
            for j in range(i + 1, 60, 3):
                (same if sims[i, j] > 0.5 else diff).append(
                    overlap(corpus.documents[i], corpus.documents[j])
                )
        assert same and diff
        assert np.mean(same) > np.mean(diff)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(num_docs=0)
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(num_topics=50, vocab_size=100)

    def test_average_document_bytes(self, corpus):
        avg = corpus.average_document_bytes()
        assert 50 < avg < 2000
