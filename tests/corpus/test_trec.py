"""Tests for TREC-style export/import."""

import numpy as np
import pytest

from repro.corpus import QueryBenchmark, SyntheticCorpus, SyntheticCorpusConfig
from repro.corpus.trec import (
    export_benchmark,
    export_documents,
    import_benchmark,
    import_documents,
)


@pytest.fixture(scope="module")
def small_corpus():
    return SyntheticCorpus.generate(
        SyntheticCorpusConfig(num_docs=30, num_topics=4, vocab_size=200, seed=3)
    )


class TestDocumentRoundTrip:
    def test_round_trip(self, small_corpus, tmp_path):
        path = tmp_path / "docs.tsv"
        export_documents(path, small_corpus.texts(), small_corpus.urls())
        texts, urls = import_documents(path)
        assert texts == small_corpus.texts()
        assert urls == small_corpus.urls()

    def test_tabs_and_newlines_sanitized(self, tmp_path):
        path = tmp_path / "docs.tsv"
        export_documents(path, ["a\tb\nc"], ["https://x.com"])
        texts, _ = import_documents(path)
        assert texts == ["a b c"]

    def test_mismatched_lengths_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_documents(tmp_path / "x.tsv", ["a"], [])

    def test_sparse_ids_rejected(self, tmp_path):
        path = tmp_path / "docs.tsv"
        path.write_text("0\tu\tt\n2\tu\tt\n")
        with pytest.raises(ValueError):
            import_documents(path)


class TestBenchmarkRoundTrip:
    def test_round_trip(self, small_corpus, tmp_path):
        bench = QueryBenchmark.generate(
            small_corpus, 15, np.random.default_rng(0)
        )
        qp, rp = tmp_path / "queries.tsv", tmp_path / "qrels.tsv"
        export_benchmark(qp, rp, bench)
        back = import_benchmark(qp, rp)
        assert len(back) == len(bench)
        for a, b in zip(back.queries, bench.queries):
            assert (a.text, a.target_doc_id, a.family) == (
                b.text, b.target_doc_id, b.family,
            )

    def test_qrels_format_is_trec(self, small_corpus, tmp_path):
        bench = QueryBenchmark.generate(
            small_corpus, 5, np.random.default_rng(1)
        )
        qp, rp = tmp_path / "queries.tsv", tmp_path / "qrels.tsv"
        export_benchmark(qp, rp, bench)
        for line in rp.read_text().splitlines():
            qid, iteration, doc, rel = line.split("\t")
            assert iteration == "0" and rel == "1"

    def test_missing_qrel_rejected(self, tmp_path):
        qp, rp = tmp_path / "queries.tsv", tmp_path / "qrels.tsv"
        qp.write_text("0\tconceptual\thello\n")
        rp.write_text("")
        with pytest.raises(ValueError):
            import_benchmark(qp, rp)
