"""Tests for query benchmark generation, URL batching, and image corpus."""

import numpy as np
import pytest

from repro.corpus import (
    ImageCorpus,
    QueryBenchmark,
    SyntheticCorpus,
    SyntheticCorpusConfig,
    UrlBatcher,
)


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus.generate(
        SyntheticCorpusConfig(num_docs=150, num_topics=6, vocab_size=300, seed=2)
    )


class TestQueryBenchmark:
    def test_generates_requested_count(self, corpus):
        bench = QueryBenchmark.generate(corpus, 50, np.random.default_rng(0))
        assert len(bench) == 50

    def test_family_mix_roughly_matches_weights(self, corpus):
        bench = QueryBenchmark.generate(corpus, 300, np.random.default_rng(1))
        counts = bench.family_counts()
        assert counts["conceptual"] > counts["lexical"] > counts["exact"] > 0

    def test_exact_queries_use_entities(self, corpus):
        bench = QueryBenchmark.generate(
            corpus, 20, np.random.default_rng(2), family_weights={"exact": 1.0}
        )
        for q in bench.queries:
            doc = corpus.documents[q.target_doc_id]
            assert q.text == doc.entity

    def test_lexical_queries_use_document_words(self, corpus):
        bench = QueryBenchmark.generate(
            corpus, 20, np.random.default_rng(3), family_weights={"lexical": 1.0}
        )
        for q in bench.queries:
            doc_words = set(corpus.documents[q.target_doc_id].text.split())
            assert set(q.text.split()) <= doc_words

    def test_conceptual_queries_use_topic_vocabulary(self, corpus):
        bench = QueryBenchmark.generate(
            corpus, 30, np.random.default_rng(4),
            family_weights={"conceptual": 1.0},
        )
        vocab = set(corpus.vocabulary)
        overlaps = []
        for q in bench.queries:
            words = q.text.split()
            assert set(words) <= vocab
            doc_words = set(corpus.documents[q.target_doc_id].text.split())
            overlaps.append(len(set(words) & doc_words) / len(words))
        # Paraphrases: on average well below full verbatim overlap.
        assert np.mean(overlaps) < 0.9

    def test_unknown_family_rejected(self, corpus):
        with pytest.raises(ValueError):
            QueryBenchmark.generate(
                corpus, 5, np.random.default_rng(5), family_weights={"nope": 1.0}
            )

    def test_by_family_filter(self, corpus):
        bench = QueryBenchmark.generate(corpus, 40, np.random.default_rng(6))
        assert all(q.family == "exact" for q in bench.by_family("exact"))


class TestUrlBatcher:
    def test_round_trip(self, corpus):
        batches, doc_to_batch = UrlBatcher(batch_size=40).build_batches(
            corpus.urls()
        )
        for doc_id, url in enumerate(corpus.urls()):
            b = doc_to_batch[doc_id]
            assert b >= 0
            assert batches[b].decompress()[doc_id] == url

    def test_grouping_controls_batch_membership(self, corpus):
        grouping = [[10, 11, 12], [0, 1, 2]]
        batches, doc_to_batch = UrlBatcher(batch_size=3).build_batches(
            corpus.urls(), grouping=grouping
        )
        assert doc_to_batch[10] == doc_to_batch[11] == doc_to_batch[12] == 0
        assert doc_to_batch[0] == doc_to_batch[1] == doc_to_batch[2] == 1

    def test_duplicate_group_entries_batched_once(self, corpus):
        grouping = [[0, 1], [1, 2]]
        batches, doc_to_batch = UrlBatcher(batch_size=2).build_batches(
            corpus.urls(), grouping=grouping
        )
        assert doc_to_batch[1] == 0

    def test_overlong_urls_dropped(self):
        urls = ["https://ok.com/a", "https://" + "x" * 600 + ".com"]
        batches, doc_to_batch = UrlBatcher(batch_size=10).build_batches(urls)
        assert doc_to_batch[0] == 0
        assert doc_to_batch[1] == -1

    def test_compression_beats_raw(self, corpus):
        batcher = UrlBatcher(batch_size=150)
        batches, _ = batcher.build_batches(corpus.urls())
        raw = sum(len(u) for u in corpus.urls())
        compressed = sum(b.compressed_bytes() for b in batches)
        assert compressed < raw
        assert batcher.average_bytes_per_url(batches) < 60


class TestImageCorpus:
    def test_generation_shapes(self):
        images = ImageCorpus.generate(num_images=50, latent_dim=16, seed=3)
        assert images.num_images == 50
        assert images.latent_matrix().shape == (50, 16)
        assert len(images.captions()) == 50

    def test_similar_captions_have_similar_latents(self):
        images = ImageCorpus.generate(num_images=100, latent_dim=16, seed=4)
        latents = images.latent_matrix()
        norm = latents / np.linalg.norm(latents, axis=1, keepdims=True)
        sims = norm @ norm.T
        np.fill_diagonal(sims, -1)
        # The closest image pair should share caption vocabulary.
        i, j = np.unravel_index(np.argmax(sims), sims.shape)
        wi = set(images.images[i].caption.split())
        wj = set(images.images[j].caption.split())
        assert wi & wj

    def test_config_mismatch_rejected(self):
        cfg = SyntheticCorpusConfig(num_docs=10)
        with pytest.raises(ValueError):
            ImageCorpus.generate(num_images=20, text_config=cfg)

    def test_urls_distinct_from_text_corpus(self):
        images = ImageCorpus.generate(num_images=10, seed=5)
        assert all(u.startswith("https://img.") for u in images.urls())
