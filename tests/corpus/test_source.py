"""Tests for the streaming DocumentSource protocol (repro.corpus.source)."""

import pytest

from repro.corpus.source import (
    DocumentBatch,
    DocumentSource,
    ImageDocumentSource,
    ListDocumentSource,
    MutatedDocumentSource,
    SyntheticDocumentSource,
    TrecDocumentSource,
    doc_digest,
)
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.corpus.trec import export_documents

CFG = SyntheticCorpusConfig(num_docs=83, num_topics=5, vocab_size=300, seed=4)


def drain(source):
    texts, urls = [], []
    for batch in source.batches():
        assert batch.start_id == len(texts)
        texts.extend(batch.texts)
        urls.extend(batch.urls)
    return texts, urls


class TestSyntheticSource:
    def test_matches_materialized_corpus_for_any_batch_size(self):
        corpus = SyntheticCorpus.generate(CFG)
        for batch_size in (1, 7, 64, 200):
            texts, urls = drain(SyntheticDocumentSource(CFG, batch_size))
            assert texts == corpus.texts()
            assert urls == corpus.urls()

    def test_batches_are_bounded(self):
        for batch in SyntheticDocumentSource(CFG, batch_size=16).batches():
            assert len(batch) <= 16

    def test_fingerprint_tracks_config(self):
        a = SyntheticDocumentSource(CFG).fingerprint()
        other = SyntheticCorpusConfig(num_docs=83, seed=5)
        assert a != SyntheticDocumentSource(other).fingerprint()
        assert a == SyntheticDocumentSource(CFG, batch_size=9).fingerprint()


class TestListAndTrecSources:
    def test_list_source_round_trip(self):
        texts = [f"doc number {i}" for i in range(11)]
        urls = [f"https://e.com/{i}" for i in range(11)]
        src = ListDocumentSource(texts, urls, batch_size=4)
        assert drain(src) == (texts, urls)
        assert isinstance(src, DocumentSource)

    def test_trec_source_streams_export(self, tmp_path):
        corpus = SyntheticCorpus.generate(CFG)
        path = tmp_path / "docs.tsv"
        export_documents(path, corpus.texts(), corpus.urls())
        texts, urls = drain(TrecDocumentSource(path, batch_size=10))
        assert urls == corpus.urls()
        assert len(texts) == corpus.num_docs

    def test_trec_source_rejects_sparse_ids(self, tmp_path):
        path = tmp_path / "docs.tsv"
        path.write_text("0\tu0\tt0\n2\tu2\tt2\n", encoding="utf-8")
        with pytest.raises(ValueError, match="dense"):
            drain(TrecDocumentSource(path))

    def test_validation(self):
        with pytest.raises(ValueError):
            ListDocumentSource(["a"], [])
        with pytest.raises(ValueError):
            ListDocumentSource(["a"], ["u"], batch_size=0)
        with pytest.raises(ValueError):
            DocumentBatch(start_id=0, texts=("a",), urls=())


class TestImageSource:
    def test_streams_the_caption_side(self):
        src = ImageDocumentSource(30, seed=2, batch_size=8)
        texts, urls = drain(src)
        assert texts == src.corpus.captions()
        assert urls == src.corpus.urls()


class TestMutatedSource:
    def test_deterministic_for_any_batch_size(self):
        base = SyntheticDocumentSource(CFG, batch_size=64)
        src = MutatedDocumentSource(base, 0.1, mutate_seed=9)
        first = drain(src)
        again = drain(
            MutatedDocumentSource(
                SyntheticDocumentSource(CFG, batch_size=5), 0.1, mutate_seed=9
            )
        )
        assert first == again

    def test_mutated_ids_oracle_matches_stream(self):
        base = SyntheticDocumentSource(CFG, batch_size=32)
        src = MutatedDocumentSource(base, 0.15, mutate_seed=1)
        base_texts, base_urls = drain(base)
        texts, urls = drain(src)
        assert urls == base_urls
        changed = [i for i in range(len(texts)) if texts[i] != base_texts[i]]
        assert changed == src.mutated_ids(len(texts))
        assert 0 < len(changed) < len(texts)

    def test_zero_fraction_is_identity(self):
        base = SyntheticDocumentSource(CFG, batch_size=32)
        src = MutatedDocumentSource(base, 0.0)
        assert drain(src) == drain(base)
        assert src.mutated_ids(CFG.num_docs) == []

    def test_validation(self):
        base = SyntheticDocumentSource(CFG)
        with pytest.raises(ValueError):
            MutatedDocumentSource(base, 1.5)


class TestDocDigest:
    def test_digest_separates_text_and_url(self):
        assert doc_digest("ab", "c") != doc_digest("a", "bc")
        assert doc_digest("a", "b") != doc_digest("a", "c")
        assert len(doc_digest("a", "b")) == 32

    def test_digest_is_stable(self):
        assert doc_digest("hello", "https://x.com") == doc_digest(
            "hello", "https://x.com"
        )
