"""Tests for the quality simulator and the ablation ladder."""

import numpy as np
import pytest

from repro.core.config import TiptoeConfig
from repro.corpus import QueryBenchmark, SyntheticCorpus, SyntheticCorpusConfig
from repro.embeddings import LsaEmbedder
from repro.evalx.ablation import run_ablation_ladder
from repro.evalx.metrics import mrr_at_k
from repro.evalx.quality import (
    TiptoeQualitySim,
    cluster_hit_rate,
    evaluate_systems,
)


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus.generate(
        SyntheticCorpusConfig(
            num_docs=600, num_topics=15, vocab_size=1200, seed=21
        )
    )


@pytest.fixture(scope="module")
def bench(corpus):
    return QueryBenchmark.generate(corpus, 80, np.random.default_rng(3))


@pytest.fixture(scope="module")
def shared_embeddings(corpus):
    embedder = LsaEmbedder.fit(corpus.texts(), dim=32)
    return embedder, embedder.embed_batch(corpus.texts())


def build_sim(corpus, shared, mode, **cfg_kwargs):
    embedder, embeddings = shared
    config = TiptoeConfig(
        embedding_dim=32, pca_dim=16, target_cluster_size=10,
        url_batch_size=8, **cfg_kwargs,
    )
    return TiptoeQualitySim.build(
        corpus.texts(),
        corpus.urls(),
        config=config,
        mode=mode,
        embedder=embedder,
        embeddings=embeddings,
        rng=np.random.default_rng(0),
    )


class TestQualitySim:
    def test_invalid_mode_rejected(self, corpus, shared_embeddings):
        with pytest.raises(ValueError):
            build_sim(corpus, shared_embeddings, "bogus")

    def test_exhaustive_ranks_all_docs(self, corpus, shared_embeddings):
        sim = build_sim(corpus, shared_embeddings, "exhaustive")
        ranked = sim.rank(corpus.documents[0].text, k=600)
        assert sorted(ranked) == list(range(600))

    def test_cluster_mode_stays_in_cluster(self, corpus, shared_embeddings):
        sim = build_sim(corpus, shared_embeddings, "cluster")
        q = corpus.documents[5].text
        cluster = sim.chosen_cluster(q)
        members = set(sim.index.layout.cluster_doc_ids[cluster])
        assert set(sim.rank(q, k=100)) <= members

    def test_batch_mode_is_subset_of_cluster_mode(
        self, corpus, shared_embeddings
    ):
        cluster_sim = build_sim(corpus, shared_embeddings, "cluster")
        batch_sim = TiptoeQualitySim(index=cluster_sim.index, mode="cluster+batch")
        q = corpus.documents[8].text
        assert set(batch_sim.rank(q, 100)) <= set(cluster_sim.rank(q, 100))

    def test_miss_means_target_absent(self, corpus, bench, shared_embeddings):
        """If the chosen cluster misses the target, Tiptoe cannot
        return it -- the Fig. 4 ceiling."""
        sim = build_sim(corpus, shared_embeddings, "cluster")
        for q in bench.queries[:30]:
            if not sim.cluster_hit(q.text, q.target_doc_id):
                assert q.target_doc_id not in sim.rank(q.text, 100)

    def test_hit_rate_bounds_quality(self, corpus, bench, shared_embeddings):
        sim = build_sim(corpus, shared_embeddings, "cluster+batch")
        targets = [q.target_doc_id for q in bench.queries]
        ranked = [sim.rank(q.text, 100) for q in bench.queries]
        found = np.mean([t in r for r, t in zip(ranked, targets)])
        assert found <= cluster_hit_rate(sim, bench) + 1e-9

    def test_clustering_loses_quality_vs_exhaustive(
        self, corpus, bench, shared_embeddings
    ):
        """Fig. 9 step 1 -> 2: the clustering quality drop."""
        exhaustive = build_sim(corpus, shared_embeddings, "exhaustive")
        clustered = build_sim(corpus, shared_embeddings, "cluster+batch")
        targets = [q.target_doc_id for q in bench.queries]
        m_ex = mrr_at_k([exhaustive.rank(q.text) for q in bench.queries], targets)
        m_cl = mrr_at_k([clustered.rank(q.text) for q in bench.queries], targets)
        assert m_cl < m_ex


class TestEvaluateSystems:
    def test_report_structure(self, corpus, bench, shared_embeddings):
        sim = build_sim(corpus, shared_embeddings, "cluster+batch")
        report = evaluate_systems(bench, {"tiptoe": sim}, k=50)
        assert set(report.mrr) == {"tiptoe"}
        assert report.cdf["tiptoe"].shape == (50,)
        assert 0 <= report.mrr["tiptoe"] <= 1
        assert set(report.per_family_mrr["tiptoe"]) <= {
            "conceptual", "lexical", "exact",
        }
        assert report.ordering() == ["tiptoe"]


class TestAblationLadder:
    @pytest.fixture(scope="class")
    def ladder(self, corpus, bench):
        config = TiptoeConfig(
            embedding_dim=32, pca_dim=12, target_cluster_size=10,
            url_batch_size=8,
        )
        return run_ablation_ladder(corpus, bench, config, paper_docs=10**8)

    def test_six_steps(self, ladder):
        assert [p.step for p in ladder] == [1, 2, 3, 4, 5, 6]

    def test_communication_collapses_after_clustering(self, ladder):
        # Fig. 9: two orders of magnitude overall; the big cliff is
        # step 1 -> 2 (no more per-document score download).
        assert ladder[0].comm_mib / ladder[1].comm_mib > 10
        assert ladder[0].comm_mib / ladder[-1].comm_mib > 50

    def test_computation_improves_by_an_order_of_magnitude(self, ladder):
        assert ladder[0].core_seconds / ladder[-1].core_seconds > 10

    def test_quality_cost_of_clustering(self, ladder):
        assert ladder[1].mrr < ladder[0].mrr

    def test_content_grouping_recovers_quality(self, ladder):
        # Step 4 undoes (most of) step 3's batch-restriction loss.
        assert ladder[3].mrr >= ladder[2].mrr

    def test_final_quality_within_configured_drop(self, ladder):
        # Paper: the ladder costs ~0.2 MRR end to end.
        assert ladder[-1].mrr >= ladder[0].mrr - 0.3

    def test_pca_required(self, corpus, bench):
        with pytest.raises(ValueError):
            run_ablation_ladder(
                corpus, bench, TiptoeConfig(pca_dim=None), paper_docs=10**7
            )
