"""Tests for the baselines and the analytic cost model."""

import numpy as np
import pytest

from repro.corpus import QueryBenchmark, SyntheticCorpus, SyntheticCorpusConfig
from repro.evalx.baselines import (
    CoeusModel,
    LatentOracleRetriever,
    client_side_index_bytes,
)
from repro.evalx.costmodel import GIB, MIB, PaperScaleModel, TiptoeCostModel

PAPER_TEXT_DOCS = 364_000_000


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus.generate(
        SyntheticCorpusConfig(num_docs=300, num_topics=10, vocab_size=500, seed=9)
    )


class TestLatentOracle:
    def test_beats_chance_on_conceptual_queries(self, corpus):
        bench = QueryBenchmark.generate(
            corpus, 40, np.random.default_rng(0),
            family_weights={"conceptual": 1.0},
        )
        oracle = LatentOracleRetriever(corpus)
        from repro.evalx.metrics import mrr_at_k

        ranked = [oracle.rank(q.text) for q in bench.queries]
        targets = [q.target_doc_id for q in bench.queries]
        assert mrr_at_k(ranked, targets) > 0.15

    def test_exact_token_matching(self, corpus):
        doc = corpus.documents_with_entities()[0]
        oracle = LatentOracleRetriever(corpus)
        assert oracle.rank(doc.entity)[0] == doc.doc_id

    def test_query_latent_is_unit_or_zero(self, corpus):
        oracle = LatentOracleRetriever(corpus)
        q = oracle.query_latent(corpus.documents[0].text)
        assert np.linalg.norm(q) == pytest.approx(1.0)
        assert not oracle.query_latent("zzz qqq").any()


class TestCoeusModel:
    """The paper's SS8.3 Coeus extrapolations."""

    def test_reference_point_matches_paper(self):
        coeus = CoeusModel()
        row = coeus.summary(5_000_000)
        assert row["comm_mib"] == pytest.approx(50.0, rel=0.05)
        assert row["core_seconds"] == 12_900
        assert row["aws_cost"] == pytest.approx(0.059)

    def test_c4_scale_matches_paper_estimates(self):
        coeus = CoeusModel()
        # Paper: >3 GiB of traffic, >900,000 core-s, ~$4.00 at C4 scale.
        assert coeus.communication_bytes(PAPER_TEXT_DOCS) > 3 * GIB
        assert coeus.core_seconds(PAPER_TEXT_DOCS) > 900_000
        assert 3.5 < coeus.aws_cost(PAPER_TEXT_DOCS) < 4.7

    def test_tiptoe_is_1000x_cheaper_in_aws_cost(self):
        # SS8.3: "more than 1000x lower AWS operating costs".
        tiptoe = TiptoeCostModel().aws_cost(PAPER_TEXT_DOCS)
        coeus = CoeusModel().aws_cost(PAPER_TEXT_DOCS)
        assert coeus / tiptoe > 1000


class TestClientSideIndex:
    def test_paper_storage_estimates(self):
        sizes = client_side_index_bytes(PAPER_TEXT_DOCS)
        # Table 6: 48 GiB for the client-side Tiptoe index.
        assert sizes["tiptoe_index_bytes"] == pytest.approx(48 * GIB, rel=0.15)
        # SS8.3: 7.4 GiB absolute minimum for compressed URLs alone.
        assert sizes["urls_only_bytes"] == pytest.approx(7.4 * GIB, rel=0.15)
        assert sizes["bm25_index_bytes_paper"] > sizes["tiptoe_index_bytes"]


class TestTiptoeCostModel:
    """Table 7 reproduction and Fig. 8 scaling laws."""

    @pytest.fixture(scope="class")
    def row(self):
        return TiptoeCostModel().summary(PAPER_TEXT_DOCS)

    @pytest.mark.parametrize(
        "key,paper,tol",
        [
            ("up_token_mib", 32.4, 0.10),
            ("down_token_mib", 9.8, 0.15),
            ("up_ranking_mib", 11.6, 0.15),
            ("down_ranking_mib", 0.5, 0.35),
            ("up_url_mib", 2.4, 0.35),
            ("down_url_mib", 0.1, 0.5),
            ("core_seconds", 145.0, 0.25),
            ("perceived_latency_s", 2.7, 0.35),
            ("token_latency_s", 6.5, 0.35),
        ],
    )
    def test_table7_within_tolerance(self, row, key, paper, tol):
        assert row[key] == pytest.approx(paper, rel=tol)

    def test_total_communication_matches_headline(self, row):
        # Abstract: 56.9 MiB per query, 74% ahead of time.
        assert row["total_mib"] == pytest.approx(56.9, rel=0.1)
        offline = row["up_token_mib"] + row["down_token_mib"]
        assert offline / row["total_mib"] == pytest.approx(0.74, abs=0.05)

    def test_query_cost_is_fractions_of_a_cent(self, row):
        assert 0.001 < row["aws_cost"] < 0.01

    def test_compute_scales_linearly(self):
        model = TiptoeCostModel()
        small = model.online_core_seconds(10**9)
        large = model.online_core_seconds(10**10)
        assert large / small == pytest.approx(10, rel=0.1)

    def test_communication_scales_roughly_as_sqrt(self):
        # SS8.5: "communication increases by roughly a factor of
        # sqrt(T)".  The ranking phases scale exactly as sqrt; the URL
        # *upload* (one word per batch) is linear, so the aggregate
        # sits between sqrt(T) and T -- much closer to sqrt.
        model = TiptoeCostModel()
        small = model.online_bytes(10**9)
        large = model.online_bytes(10**10)
        assert np.sqrt(10) * 0.8 < large / small < 10 * 0.6

    def test_figure8_google_scale_point(self):
        # SS8.5: ~1900 core-s and ~140 MiB at 8B documents.
        model = TiptoeCostModel()
        series = model.figure8_series([8 * 10**9])[0]
        total_mib = series["token_comm_mib"] + series["online_comm_mib"]
        assert series["computation_core_s"] == pytest.approx(1900, rel=0.45)
        assert total_mib == pytest.approx(140, rel=0.3)

    def test_image_deployment_costs_roughly_double(self):
        m = PaperScaleModel()
        text = m.text.summary(PAPER_TEXT_DOCS)
        image = m.image.summary(400_000_000, ranking_vcpus=320, url_vcpus=32)
        ratio = image["core_seconds"] / text["core_seconds"]
        assert 1.4 < ratio < 2.6
        assert image["total_mib"] > text["total_mib"]

    def test_table6_rows_complete(self):
        rows = PaperScaleModel().table6_rows()
        assert {r["system"] for r in rows} == {"tiptoe-text", "tiptoe-image"}
