"""Tests for hardware calibration of the cost model."""

import pytest

from repro.evalx.calibration import (
    calibrated_model,
    calibration_report,
    measure_word_ops_per_second,
)
from repro.evalx.costmodel import TiptoeCostModel


class TestCalibration:
    def test_measured_throughput_is_plausible(self):
        ops = measure_word_ops_per_second(rows=256, cols=512, repeats=2)
        # Anything from an embedded core to a vector monster.
        assert 1e6 < ops < 1e13

    def test_calibrated_model_scales_core_seconds(self):
        base = TiptoeCostModel()
        local, ratio = calibrated_model(base, measured_ops_per_second=1.5e9)
        assert ratio == pytest.approx(2.0)
        n = 10**8
        assert local.online_core_seconds(n) == pytest.approx(
            base.online_core_seconds(n) * 2.0
        )
        # Communication is hardware-independent.
        assert local.online_bytes(n) == base.online_bytes(n)

    def test_invalid_measurement_rejected(self):
        with pytest.raises(ValueError):
            calibrated_model(measured_ops_per_second=0)

    def test_report_fields(self):
        report = calibration_report(num_docs=10**7)
        assert report["paper_core_seconds"] > 0
        assert report["local_core_seconds"] > 0
        assert report["slowdown_vs_paper"] == pytest.approx(
            report["paper_ops_per_second"] / report["measured_ops_per_second"]
        )
