"""Tests for the ASCII figure renderer."""

import pytest

from repro.evalx.figures import ascii_chart, cdf_chart


class TestAsciiChart:
    def test_renders_all_series_markers(self):
        out = ascii_chart(
            {"alpha": [(0, 0), (1, 1)], "beta": [(0, 1), (1, 0)]},
            width=20,
            height=6,
        )
        assert "A" in out and "B" in out
        assert "A=alpha" in out and "B=beta" in out

    def test_fixed_dimensions(self):
        out = ascii_chart({"s": [(0, 0), (5, 10)]}, width=30, height=8)
        body = [l for l in out.splitlines() if l.startswith(" " * 9 + "|")]
        assert len(body) == 8
        assert all(len(l) == 9 + 1 + 30 + 1 for l in body)

    def test_log_axes(self):
        out = ascii_chart(
            {"s": [(1, 1), (10, 100), (100, 10000)]},
            width=20,
            height=5,
            log_x=True,
            log_y=True,
        )
        assert "1e+04" in out or "10000" in out or "1e4" in out.replace("+0", "")

    def test_constant_series_does_not_crash(self):
        out = ascii_chart({"flat": [(0, 5), (1, 5), (2, 5)]}, width=10, height=4)
        assert "F" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"s": []})

    def test_cdf_chart_plateaus_visibly(self):
        flat = [0.3] * 50
        rising = [min(1.0, 0.02 * (i + 1)) for i in range(50)]
        out = cdf_chart({"tiptoe": flat, "embed": rising}, width=40, height=10)
        lines = [l for l in out.splitlines() if "|" in l]
        # The flat (plateau) series occupies a single row.
        tiptoe_rows = [i for i, l in enumerate(lines) if "T" in l]
        assert len(tiptoe_rows) == 1
        embed_rows = [i for i, l in enumerate(lines) if "E" in l]
        assert len(embed_rows) > 3
