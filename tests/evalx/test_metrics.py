"""Tests for MRR@k and the rank CDF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evalx.metrics import mrr_at_k, rank_cdf, reciprocal_rank


class TestReciprocalRank:
    def test_rank_positions(self):
        assert reciprocal_rank([5, 3, 9], 5) == 1.0
        assert reciprocal_rank([5, 3, 9], 3) == 0.5
        assert reciprocal_rank([5, 3, 9], 9) == pytest.approx(1 / 3)

    def test_missing_target_scores_zero(self):
        assert reciprocal_rank([1, 2, 3], 99) == 0.0

    def test_k_cutoff(self):
        assert reciprocal_rank([1, 2, 3], 3, k=2) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            reciprocal_rank([1], 1, k=0)


class TestMrr:
    def test_paper_interpretation(self):
        # "average rank 7.7" corresponds to MRR around 0.25 when the
        # distribution is skewed; exact inverse for constant rank:
        ranked = [[0] * 7 + [42] + [0] * 92 for _ in range(10)]
        assert mrr_at_k(ranked, [42] * 10) == pytest.approx(1 / 8)

    def test_mixed_queries(self):
        ranked = [[7, 1], [1, 7], [2, 3]]
        assert mrr_at_k(ranked, [7, 7, 7]) == pytest.approx((1 + 0.5 + 0) / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            mrr_at_k([[1]], [1, 2])
        with pytest.raises(ValueError):
            mrr_at_k([], [])


class TestRankCdf:
    def test_monotone_and_bounded(self):
        ranked = [[1, 2, 3], [2, 1, 3], [9, 9, 9]]
        cdf = rank_cdf(ranked, [1, 1, 1], k=3)
        assert list(cdf) == pytest.approx([1 / 3, 2 / 3, 2 / 3])
        assert all(cdf[i] <= cdf[i + 1] for i in range(len(cdf) - 1))

    def test_plateau_below_one_when_targets_missing(self):
        cdf = rank_cdf([[1], [2]], [9, 9], k=5)
        assert cdf[-1] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            rank_cdf([[1]], [1, 2])


@given(
    st.lists(
        st.permutations(list(range(8))), min_size=1, max_size=10
    ),
    st.integers(0, 7),
)
@settings(max_examples=50, deadline=None)
def test_mrr_equals_mean_of_reciprocal_ranks(perms, target):
    ranked = [list(p) for p in perms]
    want = np.mean([reciprocal_rank(r, target, 8) for r in ranked])
    assert mrr_at_k(ranked, [target] * len(ranked), 8) == pytest.approx(want)
