"""Figure 9: the impact of each optimization on quality and cost.

Paper ladder (MRR@100 / total comm / server compute), cumulative:
  1. no optimizations      ~0.45 of emb. quality, ~10 GiB, ~1M core-s
  2. + clustering           -0.2 MRR, comm / 20
  3. + URL batches           -0.04 MRR, URL comm & compute / 4
  4. + content grouping      +0.04 MRR, free
  5. + boundary duplication  +0.015 MRR, index x1.2
  6. + PCA (full Tiptoe)     -0.02 MRR, bandwidth & compute / ~2

Net effect: communication improves by two orders of magnitude and
computation by one, at ~0.2 MRR@100.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.config import TiptoeConfig
from repro.evalx.ablation import run_ablation_ladder


def test_fig9_ablation_ladder(benchmark, bench_corpus, bench_queries):
    config = TiptoeConfig(
        embedding_dim=64,
        pca_dim=24,
        target_cluster_size=8,
        url_batch_size=10,
    )
    ladder = benchmark.pedantic(
        run_ablation_ladder,
        args=(bench_corpus, bench_queries, config),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'step':>4s} {'configuration':26s} {'MRR@100':>8s}"
        f" {'comm MiB':>12s} {'core-s':>10s}"
    ]
    for p in ladder:
        lines.append(
            f"{p.step:4d} {p.label:26s} {p.mrr:8.3f} {p.comm_mib:12.1f}"
            f" {p.core_seconds:10.1f}"
        )
    first, last = ladder[0], ladder[-1]
    lines += [
        "",
        f"communication improvement: {first.comm_mib / last.comm_mib:,.0f}x"
        " (paper: two orders of magnitude)",
        f"computation improvement: {first.core_seconds / last.core_seconds:,.0f}x"
        " (paper: one order of magnitude)",
        f"quality cost: {first.mrr - last.mrr:+.3f} MRR@100 (paper: ~0.2)",
    ]
    from repro.evalx.figures import ascii_chart

    lines.append("")
    lines.append(
        ascii_chart(
            {
                f"{p.step}": [(p.comm_mib, p.mrr)] for p in ladder
            },
            width=60,
            height=12,
            x_label="total comm MiB (log)",
            y_label="MRR@100",
            log_x=True,
        )
    )
    emit("fig9_ablations", lines)

    # The paper's two headline ratios.
    assert first.comm_mib / last.comm_mib > 100
    assert first.core_seconds / last.core_seconds > 10
    # Clustering is the big quality cliff; grouping recovers some.
    assert ladder[1].mrr < ladder[0].mrr
    assert ladder[3].mrr >= ladder[2].mrr
    # Full Tiptoe keeps most of the no-optimization quality.
    assert last.mrr > first.mrr - 0.3
