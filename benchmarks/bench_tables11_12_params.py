"""Tables 11 and 12: LWE parameter selection across upload dimensions.

The paper fixes, for each upload dimension m, the largest plaintext
modulus p meeting the 2^-40 correctness budget -- Table 11 for the URL
step (q = 2^32) and Table 12 for the ranking step (q = 2^64).  This
bench prints our noise-budget formula's output next to the paper's
values, plus the heuristic security estimate for each row.
"""

import pytest

from benchmarks.conftest import emit
from repro.lwe.params import (
    PAPER_TABLE_11,
    PAPER_TABLE_12,
    estimate_security_bits,
    max_plaintext_modulus,
)


def make_table(paper_table, q_bits):
    lines = [
        f"{'m':>10s} {'p (ours)':>10s} {'p (paper)':>10s} {'n':>6s}"
        f" {'sigma':>9s} {'est. bits':>9s}"
    ]
    rows = []
    for m in sorted(paper_table):
        p_paper, n, sigma = paper_table[m]
        p_ours = max_plaintext_modulus(m, q_bits, sigma)
        bits = estimate_security_bits(n, q_bits, sigma)
        rows.append((m, p_ours, p_paper))
        lines.append(
            f"{m:10,d} {p_ours:10,d} {p_paper:10,d} {n:6d} {sigma:9.1f}"
            f" {bits:9.0f}"
        )
    return lines, rows


def test_table11_url_parameters(benchmark):
    lines, rows = benchmark.pedantic(
        make_table, args=(PAPER_TABLE_11, 32), rounds=1, iterations=1
    )
    emit("table11_params_q32", lines)
    for m, ours, paper in rows:
        assert 0.7 * paper <= ours <= 1.5 * paper, m
    # p decreases monotonically with m within each (n, sigma) regime.
    small_m = [r for r in rows if r[0] <= 2**20]
    assert [r[1] for r in small_m] == sorted(
        (r[1] for r in small_m), reverse=True
    )


def test_table12_ranking_parameters(benchmark):
    lines, rows = benchmark.pedantic(
        make_table, args=(PAPER_TABLE_12, 64), rounds=1, iterations=1
    )
    emit("table12_params_q64", lines)
    for m, ours, paper in rows:
        assert 0.5 * paper <= ours <= 2.0 * paper, m
    # The operating point: m = 2^21-ish supports p = 2^17 (App. C),
    # enough for d = 192 embeddings at 4-bit precision.
    assert max_plaintext_modulus(2**21, 64, 81920.0) >= 2**17
