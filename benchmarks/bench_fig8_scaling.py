"""Figure 8: analytic scaling to tens of billions of documents.

The paper sweeps the cost model from 1B to 10B documents and marks
three reference corpora: tweets per week (~2B), Google Knowledge
Graph entities (8B), and Library of Congress items.  Headline claim
(SS8.5): at 8B documents a query needs roughly 1,900 core-seconds and
140 MiB of communication; compute scales ~linearly and communication
~sqrt with corpus size.
"""

import pytest

from benchmarks.conftest import emit
from repro.evalx.costmodel import TiptoeCostModel

BILLION = 10**9
GOOGLE_KG_DOCS = 8 * BILLION


def test_fig8_scaling_series(benchmark):
    model = TiptoeCostModel()
    doc_counts = [n * BILLION for n in range(1, 11)]
    series = benchmark.pedantic(
        model.figure8_series, args=(doc_counts,), rounds=1, iterations=1
    )
    lines = [
        f"{'docs (B)':>9s} {'compute core-s':>15s} {'token MiB':>10s}"
        f" {'online MiB':>11s}"
    ]
    for row in series:
        lines.append(
            f"{row['docs'] / BILLION:9.0f} {row['computation_core_s']:15.0f}"
            f" {row['token_comm_mib']:10.1f} {row['online_comm_mib']:11.1f}"
        )
    kg = model.figure8_series([GOOGLE_KG_DOCS])[0]
    lines.append(
        f"google-kg (8B): {kg['computation_core_s']:.0f} core-s,"
        f" {kg['token_comm_mib'] + kg['online_comm_mib']:.0f} MiB total"
    )
    measured = model.figure8_series([364_000_000])[0]
    lines.append(
        f"measured cross (364M): {measured['computation_core_s']:.0f} core-s,"
        f" {measured['token_comm_mib'] + measured['online_comm_mib']:.0f} MiB"
    )
    from repro.evalx.figures import ascii_chart

    lines.append("")
    lines.append(
        ascii_chart(
            {
                "compute core-s": [
                    (r["docs"] / BILLION, r["computation_core_s"])
                    for r in series
                ],
                "token MiB": [
                    (r["docs"] / BILLION, r["token_comm_mib"]) for r in series
                ],
                "online MiB": [
                    (r["docs"] / BILLION, r["online_comm_mib"]) for r in series
                ],
            },
            width=60,
            height=14,
            x_label="billions of documents",
            log_y=True,
        )
    )
    emit("fig8_scaling", lines)

    # SS8.5 headline: ~1,900 core-s and ~140 MiB at 8B docs.
    total_kg_mib = kg["token_comm_mib"] + kg["online_comm_mib"]
    assert kg["computation_core_s"] == pytest.approx(1900, rel=0.45)
    assert total_kg_mib == pytest.approx(140, rel=0.3)
    # Compute ~linear in corpus size: the online part is exactly
    # linear; token generation scales as sqrt, so the total sits just
    # below linear.
    model_only_online = TiptoeCostModel()
    online_ratio = model_only_online.online_core_seconds(
        doc_counts[-1]
    ) / model_only_online.online_core_seconds(doc_counts[0])
    assert online_ratio == pytest.approx(10, rel=0.1)
    total_ratio = (
        series[-1]["computation_core_s"] / series[0]["computation_core_s"]
    )
    assert 5 < total_ratio <= 10
    comm_ratio = (
        series[-1]["online_comm_mib"] / series[0]["online_comm_mib"]
    )
    assert comm_ratio < 6  # roughly sqrt(10) ~ 3.2, plus linear URL upload
