"""Transport overhead: loopback vs TCP round trips (SS8.1 context).

The paper reports end-to-end latency over a real network; this repo's
default transport is in-process loopback.  This bench measures what
the socket plane itself costs -- same services, same wire encoding,
one path dispatching in-process and the other crossing a local TCP
socket through ``ServerRunner``.  The delta bounds the serialization +
framing + syscall overhead a single-host deployment adds on top of
the cryptographic work (the dominant term at paper scale is the
server's linear scan, not the transport).
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import TiptoeConfig, TiptoeEngine
from repro.corpus import SyntheticCorpus, SyntheticCorpusConfig
from repro.net.rpc import RpcChannel
from repro.net.tcp import ServerRunner, connect_transport
from repro.net.transport import TrafficLog


@pytest.fixture(scope="module")
def transport_engine():
    corpus = SyntheticCorpus.generate(
        SyntheticCorpusConfig(num_docs=150, seed=23)
    )
    engine = TiptoeEngine.build(
        corpus.texts(),
        corpus.urls(),
        TiptoeConfig(),
        rng=np.random.default_rng(23),
    )
    yield engine
    engine.close()


def _time_round_trips(channel, rounds: int) -> list[float]:
    """Per-call latency of the cheapest endpoint (hint download)."""
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        channel.call("hint", "hint", "url", b"")
        samples.append(time.perf_counter() - start)
    return samples


def test_loopback_vs_tcp_round_trip(transport_engine, benchmark):
    rounds = 30
    loop_channel = RpcChannel(TrafficLog(), transport_engine.transport)

    with ServerRunner(transport_engine.services.values(), port=0) as runner:
        host, port = runner.address
        tcp = connect_transport(host, port, timeout=10.0)
        tcp_channel = RpcChannel(TrafficLog(), tcp)

        def run():
            return (
                _time_round_trips(loop_channel, rounds),
                _time_round_trips(tcp_channel, rounds),
            )

        loop_s, tcp_s = benchmark.pedantic(run, rounds=1, iterations=1)
        tcp.close()

    loop_p50 = sorted(loop_s)[len(loop_s) // 2]
    tcp_p50 = sorted(tcp_s)[len(tcp_s) // 2]
    emit(
        "BENCH_transport",
        [
            f"{'path':>10s} {'p50 us':>10s} {'min us':>10s}",
            f"{'loopback':>10s} {loop_p50 * 1e6:10.1f} {min(loop_s) * 1e6:10.1f}",
            f"{'tcp':>10s} {tcp_p50 * 1e6:10.1f} {min(tcp_s) * 1e6:10.1f}",
            f"socket overhead p50: {(tcp_p50 - loop_p50) * 1e6:.1f} us/call",
        ],
    )
    # Sanity, not a perf assertion: both paths completed every call.
    assert len(loop_s) == len(tcp_s) == rounds


def test_tcp_search_end_to_end(transport_engine, benchmark):
    """A whole private search over the socket plane."""
    with ServerRunner(transport_engine.services.values(), port=0) as runner:
        host, port = runner.address
        remote = TiptoeEngine.connect(
            transport_engine.index, host, port
        )

        result = benchmark.pedantic(
            lambda: remote.search("alpha beta", np.random.default_rng(3)),
            rounds=1,
            iterations=1,
        )
        up, down = result.traffic.bytes_up(), result.traffic.bytes_down()
        remote.close()

    emit(
        "BENCH_transport_search",
        [
            f"results: {len(result.results)}",
            f"traffic: {up:,} B up / {down:,} B down",
        ],
    )
    assert result.results
