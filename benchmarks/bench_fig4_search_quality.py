"""Figure 4: search quality on the benchmark (MRR@100 + rank CDF).

Paper values (MS MARCO document ranking):
  ColBERT 0.40 > embeddings 0.33 ~ BM25 0.32 > tf-idf 0.27 >
  Tiptoe 0.25 >> tf-idf with Coeus's restricted dictionary 0.00;
  Tiptoe probes the right cluster on ~35% of queries (the dotted
  ceiling of the right panel), and matches exhaustive search when it
  does.

This bench regenerates both panels on the synthetic MS MARCO stand-in
and asserts the qualitative shape.  One expected deviation (recorded
in EXPERIMENTS.md): our untrained LSA embedder ties with BM25/tf-idf
instead of beating them -- the paper's transformer is trained on MS
MARCO itself.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.config import TiptoeConfig
from repro.embeddings import Bm25Retriever, TfidfRetriever
from repro.evalx.baselines import LatentOracleRetriever
from repro.evalx.quality import (
    TiptoeQualitySim,
    cluster_hit_rate,
    evaluate_systems,
)

PAPER_MRR = {
    "colbert-oracle": 0.40,
    "embeddings": 0.33,
    "bm25": 0.32,
    "tfidf": 0.27,
    "tiptoe": 0.25,
    "tfidf-restricted": 0.00,
}


@pytest.fixture(scope="module")
def systems(bench_corpus, bench_embedder, bench_embeddings):
    cfg = TiptoeConfig(
        embedding_dim=64,
        pca_dim=24,
        target_cluster_size=8,
        url_batch_size=10,
    )
    tiptoe = TiptoeQualitySim.build(
        bench_corpus.texts(),
        bench_corpus.urls(),
        cfg,
        mode="cluster+batch",
        embedder=bench_embedder,
        embeddings=bench_embeddings,
        rng=np.random.default_rng(1),
    )
    exhaustive = TiptoeQualitySim.build(
        bench_corpus.texts(),
        bench_corpus.urls(),
        cfg.with_(pca_dim=None),
        mode="exhaustive",
        embedder=bench_embedder,
        embeddings=bench_embeddings,
        rng=np.random.default_rng(2),
    )
    return {
        "colbert-oracle": LatentOracleRetriever(bench_corpus),
        "embeddings": exhaustive,
        "tiptoe": tiptoe,
        "bm25": Bm25Retriever.from_documents(bench_corpus.texts()),
        "tfidf": TfidfRetriever(bench_corpus.texts()),
        "tfidf-restricted": TfidfRetriever.with_restricted_vocab(
            bench_corpus.texts(), 30
        ),
    }


def test_fig4_left_mrr_table(benchmark, systems, bench_queries):
    report = benchmark.pedantic(
        evaluate_systems, args=(bench_queries, systems), rounds=1, iterations=1
    )
    lines = [f"{'system':20s} {'MRR@100':>9s} {'paper':>7s}"]
    for name in report.ordering():
        lines.append(
            f"{name:20s} {report.mrr[name]:9.3f} {PAPER_MRR[name]:7.2f}"
        )
    emit("fig4_left_mrr", lines)

    mrr = report.mrr
    # Shape assertions mirroring the paper's ordering.
    assert mrr["colbert-oracle"] == max(mrr.values())
    assert mrr["tiptoe"] < mrr["embeddings"]
    assert abs(mrr["tiptoe"] - mrr["tfidf"]) < 0.08  # "comparable to tf-idf"
    assert mrr["tfidf-restricted"] < 0.02  # Coeus's dictionary collapses


def test_fig4_right_rank_cdf(benchmark, systems, bench_queries, bench_corpus):
    report = benchmark.pedantic(
        evaluate_systems,
        args=(
            bench_queries,
            {k: systems[k] for k in ("embeddings", "tiptoe", "tfidf")},
        ),
        rounds=1,
        iterations=1,
    )
    hit_rate = cluster_hit_rate(systems["tiptoe"], bench_queries)
    lines = [f"{'index i':>8s} {'embed':>7s} {'tfidf':>7s} {'tiptoe':>7s}"]
    for i in (0, 4, 9, 24, 49, 74, 99):
        lines.append(
            f"{i + 1:8d} {report.cdf['embeddings'][i]:7.2f}"
            f" {report.cdf['tfidf'][i]:7.2f} {report.cdf['tiptoe'][i]:7.2f}"
        )
    lines.append(f"cluster-hit ceiling (dotted line): {hit_rate:.2f}")
    from repro.evalx.figures import cdf_chart

    lines.append("")
    lines.append(
        cdf_chart(
            {
                "embeddings": list(report.cdf["embeddings"]),
                "tfidf": list(report.cdf["tfidf"]),
                "X-tiptoe": list(report.cdf["tiptoe"]),
            },
            width=60,
            height=14,
        )
    )
    emit("fig4_right_cdf", lines)

    # Tiptoe's CDF plateaus at (or below) the cluster-hit ceiling.
    assert report.cdf["tiptoe"][-1] <= hit_rate + 1e-9
    # The unclustered curves keep growing past Tiptoe's plateau.
    assert report.cdf["embeddings"][-1] > report.cdf["tiptoe"][-1]
