"""SS8.6 (first sentence): the cost of 4-bit fixed-precision embeddings.

"We reduce the embedding precision from floating point values to
signed 4-bit integers, decreasing MRR@100 by 0.005."  This bench
sweeps the precision and measures the quality delta against
floating-point scoring on the same embeddings (exhaustive retrieval,
so clustering effects don't confound the comparison), plus the §3.1
size claim that embeddings are a small fraction of document size.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.embeddings.quantize import QuantizationConfig, auto_gain, quantize
from repro.evalx.metrics import mrr_at_k


def rank_float(embeddings, q, k=100):
    scores = embeddings @ q
    return [int(i) for i in np.argsort(-scores, kind="stable")[:k]]


def rank_quantized(embeddings, q, bits, gain, k=100):
    cfg = QuantizationConfig(precision_bits=bits)
    doc_q = quantize(embeddings * gain, cfg)
    scores = doc_q @ quantize(q * gain, cfg)
    return [int(i) for i in np.argsort(-scores, kind="stable")[:k]]


def test_precision_sweep(
    benchmark, bench_corpus, bench_queries, bench_embedder, bench_embeddings
):
    targets = [q.target_doc_id for q in bench_queries.queries]
    query_vecs = [
        bench_embedder.embed(q.text) for q in bench_queries.queries
    ]

    gain = auto_gain(bench_embeddings)

    def sweep():
        float_mrr = mrr_at_k(
            [rank_float(bench_embeddings, q) for q in query_vecs], targets
        )
        rows = [("float", float_mrr)]
        for bits in (2, 3, 4, 6, 8):
            mrr = mrr_at_k(
                [
                    rank_quantized(bench_embeddings, q, bits, gain)
                    for q in query_vecs
                ],
                targets,
            )
            rows.append((f"{bits}-bit", mrr))
        return float_mrr, rows

    float_mrr, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"pre-quantization gain: {gain:.2f}",
        f"{'precision':>10s} {'MRR@100':>8s} {'delta':>8s}",
    ]
    for name, mrr in rows:
        lines.append(f"{name:>10s} {mrr:8.3f} {mrr - float_mrr:+8.3f}")
    lines.append("paper: 4-bit costs 0.005 MRR@100 (transformer embeddings)")
    emit("precision_sweep", lines)

    by_name = dict(rows)
    # The paper reports a 0.005 cost at 4 bits; our LSA embeddings are
    # noisier per component, so we allow up to 0.025.
    assert abs(by_name["4-bit"] - float_mrr) < 0.025
    # Precision has to matter somewhere: 2-bit hurts more than 4-bit.
    assert (float_mrr - by_name["2-bit"]) >= (float_mrr - by_name["4-bit"]) - 0.01
    # Diminishing returns: 8-bit close to float (residual error comes
    # from the range-matching clip, not the bit width).
    assert abs(by_name["8-bit"] - float_mrr) < 0.02
    assert by_name["8-bit"] > by_name["2-bit"]


def test_embeddings_are_small_fraction_of_documents(benchmark, bench_corpus):
    """SS3.1: embeddings are < 4% of the average document size.

    At the paper's operating point: 192 dims x 4 bits = 96 bytes vs. a
    multi-KiB average web page.  Checked with the paper's constants and
    with this corpus's own average document length.
    """
    avg_doc = benchmark.pedantic(
        bench_corpus.average_document_bytes, rounds=1, iterations=1
    )
    paper_embedding_bytes = 192 * 4 / 8
    paper_avg_page = 2500  # C4's mean page is a few KiB of text
    emit(
        "embedding_size_fraction",
        [
            f"paper operating point: {paper_embedding_bytes:.0f} B embedding"
            f" vs ~{paper_avg_page} B page ="
            f" {paper_embedding_bytes / paper_avg_page:.1%}",
            f"this corpus: {avg_doc:.0f} B average document",
        ],
    )
    assert paper_embedding_bytes / paper_avg_page < 0.04
