"""Table 7: the per-phase cost breakdown of a Tiptoe query.

Two panels:

* *measured* -- the simulated deployment runs a real private query and
  reports its per-phase traffic and modeled latency;
* *paper scale* -- the calibrated analytic model reproduces the
  communication/latency/throughput columns of Table 7 for both the
  text (364M docs) and image (400M docs) deployments.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import TiptoeConfig, TiptoeEngine
from repro.evalx.costmodel import MIB, PaperScaleModel

PAPER_TEXT = {
    "up_token_mib": 32.4,
    "up_ranking_mib": 11.6,
    "up_url_mib": 2.4,
    "down_token_mib": 9.8,
    "down_ranking_mib": 0.5,
    "down_url_mib": 0.1,
    "perceived_latency_s": 2.7,
    "token_latency_s": 6.5,
}
PAPER_IMAGE = {
    "up_token_mib": 32.4,
    "up_ranking_mib": 16.2,
    "up_url_mib": 3.2,
    "down_token_mib": 17.4,
    "down_ranking_mib": 1.0,
    "down_url_mib": 0.2,
    "perceived_latency_s": 3.5,
    "token_latency_s": 8.7,
}


def run_measured(bench_corpus):
    engine = TiptoeEngine.build(
        bench_corpus.texts()[:500],
        bench_corpus.urls()[:500],
        TiptoeConfig(),
        rng=np.random.default_rng(0),
    )
    result = engine.search(
        bench_corpus.documents[3].text, np.random.default_rng(1)
    )
    ledger = engine.ranking_service.ledger
    ledger.merge(engine.url_service.ledger)
    return engine, result, ledger


def test_table7_measured_breakdown(benchmark, bench_corpus):
    engine, result, ledger = benchmark.pedantic(
        run_measured, args=(bench_corpus,), rounds=1, iterations=1
    )
    lines = [f"{'phase':10s} {'up bytes':>12s} {'down bytes':>12s}"]
    for phase, (up, down) in result.traffic.phase_summary().items():
        lines.append(f"{phase:10s} {up:12,d} {down:12,d}")
    lines += [
        "",
        f"model download: {engine.index.model_bytes():,} bytes",
        f"centroid metadata: {engine.index.client_metadata().download_bytes():,} bytes",
        f"index storage: {engine.index.index_storage_bytes():,} bytes",
        f"server word ops (online): {ledger.total_ops():,}",
        f"perceived latency: {result.perceived_latency:.3f} s",
        f"token latency: {result.token_latency:.3f} s",
    ]
    emit("table7_measured", lines)

    summary = result.traffic.phase_summary()
    # >70% of traffic happens before the query exists (SS8.3).
    offline = sum(summary["token"])
    total = result.traffic.total_bytes()
    assert offline / total > 0.7
    # The ranking download is 8 bytes per candidate score (SS3.1),
    # plus the fixed wire/RPC framing.
    from repro.net import rpc, wire

    rows = engine.index.layout.rows
    framing = wire.HEADER_BYTES + rpc.FRAME_BYTES
    assert summary["ranking"][1] == rows * 8 + framing


def test_table7_paper_scale_columns(benchmark):
    model = PaperScaleModel()
    text, image = benchmark.pedantic(
        lambda: (
            model.text.summary(364_000_000),
            model.image.summary(400_000_000, ranking_vcpus=320, url_vcpus=32),
        ),
        rounds=1,
        iterations=1,
    )
    lines = [f"{'metric':24s} {'text':>9s} {'paper':>7s} {'image':>9s} {'paper':>7s}"]
    for key in PAPER_TEXT:
        lines.append(
            f"{key:24s} {text[key]:9.2f} {PAPER_TEXT[key]:7.1f}"
            f" {image[key]:9.2f} {PAPER_IMAGE[key]:7.1f}"
        )
    lines.append(
        f"{'total_mib':24s} {text['total_mib']:9.2f} {56.9:7.1f}"
        f" {image['total_mib']:9.2f} {71.0:7.1f}"
    )
    emit("table7_paper_scale", lines)

    for key, paper in PAPER_TEXT.items():
        assert text[key] == pytest.approx(paper, rel=0.5), key
    assert image["total_mib"] > text["total_mib"]
    assert image["down_token_mib"] > text["down_token_mib"]
