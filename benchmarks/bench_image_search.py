"""SS8.3 text-to-image search: the second Tiptoe deployment.

Paper: the LAION-400M deployment is 1.2x more documents and 2x the
embedding dimension, costing ~2.3x the compute and ~1.2x the
communication of text search.  This bench runs the full private
text-to-image pipeline at simulation scale (caption queries retrieve
their own image) and prints the paper-scale cost ratios from the
analytic model.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import TiptoeConfig, TiptoeEngine
from repro.corpus import ImageCorpus
from repro.embeddings import HashingEmbedder
from repro.embeddings.joint import JointEmbedder
from repro.evalx.costmodel import PaperScaleModel


def build_image_engine():
    from repro.corpus.synthetic import SyntheticCorpusConfig

    images = ImageCorpus.generate(
        num_images=360,
        latent_dim=24,
        text_config=SyntheticCorpusConfig(
            num_docs=360, num_topics=30, vocab_size=1050, seed=4
        ),
        seed=4,
    )
    # The server owns both modalities, so the alignment trains on the
    # full caption/image set (as CLIP trains on its whole corpus).
    joint = JointEmbedder.fit(
        HashingEmbedder(dim=48),
        images.captions(),
        images.latent_matrix(),
    )
    embeddings = joint.embed_images(images.latent_matrix())
    engine = TiptoeEngine.build_from_embeddings(
        embeddings,
        images.urls(),
        query_embedder=joint,
        config=TiptoeConfig(embedding_dim=24, pca_dim=None),
        rng=np.random.default_rng(5),
    )
    return images, engine


def test_image_search_end_to_end(benchmark):
    images, engine = benchmark.pedantic(
        build_image_engine, rounds=1, iterations=1
    )
    hits10 = 0
    trials = list(range(0, 360, 36))
    example_urls = []
    for img_id in trials:
        result = engine.search(
            images.images[img_id].caption, np.random.default_rng(img_id)
        )
        top = engine.result_doc_ids(result)[:10]
        hits10 += int(img_id in top)
        if len(example_urls) < 3 and result.urls():
            example_urls.append(
                (images.images[img_id].caption[:48], result.urls()[0])
            )
    lines = [
        f"corpus: {images.num_images} images, joint dim {engine.index.layout.dim}",
        f"caption query recalls its image in top-10: {hits10}/{len(trials)}",
        "",
        "sample results (caption -> retrieved image URL):",
    ]
    lines += [f"  {cap!r} -> {url}" for cap, url in example_urls]
    emit("image_search", lines)
    assert hits10 >= len(trials) * 0.6


def test_image_vs_text_cost_ratios(benchmark):
    model = PaperScaleModel()
    text, image = benchmark.pedantic(
        lambda: (
            model.text.summary(364_000_000),
            model.image.summary(400_000_000, ranking_vcpus=320, url_vcpus=32),
        ),
        rounds=1,
        iterations=1,
    )
    compute_ratio = image["core_seconds"] / text["core_seconds"]
    comm_ratio = image["total_mib"] / text["total_mib"]
    emit(
        "image_vs_text_ratios",
        [
            f"compute ratio: {compute_ratio:.2f}x (paper: 2.3x)",
            f"communication ratio: {comm_ratio:.2f}x (paper: 1.2x)",
            f"image total: {image['total_mib']:.1f} MiB (paper: 71)",
            f"image latency: {image['perceived_latency_s']:.1f} s (paper: 3.5)",
        ],
    )
    assert 1.3 < compute_ratio < 2.7
    assert 1.05 < comm_ratio < 1.6
