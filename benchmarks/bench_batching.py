"""Cross-query batching: queries/sec on the ranking scan vs batch size.

The paper's throughput claims (SS8.1, Table 7) assume the server
amortizes its linear scan across many concurrent clients.  This bench
measures exactly that lever: the same ranking fleet answers the same
query stream at batch sizes 1, 4, 16, and 64, and the emitted
``BENCH_batching.json`` records queries/sec per batch size.  Batch
size 1 is the sequential path (one matrix-vector product per query);
larger batches run one stacked GEMM per shard per batch.

Two assertions ride along: answers must stay bit-identical to the
sequential path at every batch size (exactness is the batch plane's
contract), and batch size 16 must deliver at least 3x the sequential
queries/sec -- the acceptance bar for the batching PR.
"""

import time

import numpy as np

from benchmarks.conftest import OUT_DIR, emit
from repro.core.cluster_runtime import ShardedRankingService
from repro.core.ranking import RankingClient
from repro.homenc.double import DoubleLheParams, DoubleLheScheme
from repro.lwe import LweParams
from repro.lwe.sampling import seeded_rng
from repro.obs.export import write_bench_json

BATCH_SIZES = (1, 4, 16, 64)
NUM_QUERIES = 64
REPEATS = 2


def _build_ranking():
    """A compute-bound ranking scan: 2000 rows x 8192 columns."""
    dim = 16
    clusters = 512
    rows = 2000
    inner = LweParams(
        n=64, q_bits=32, p=2**16, sigma=6.4, m=dim * clusters
    )
    scheme = DoubleLheScheme(
        DoubleLheParams(inner=inner, outer_n=64), a_seed=b"Q" * 32
    )
    rng = seeded_rng(2)
    matrix = rng.integers(-8, 8, size=(rows, dim * clusters))
    service = ShardedRankingService.build(scheme, matrix, dim, 4)
    client = RankingClient(scheme, dim=dim, num_clusters=clusters)
    keys = scheme.gen_keys(rng)
    embedding = rng.integers(-8, 8, size=dim)
    queries = [
        client.build_query(keys, embedding, i % clusters, rng)
        for i in range(NUM_QUERIES)
    ]
    return service, queries


def _time_batched(service, queries, batch_size) -> float:
    """Best-of-REPEATS seconds to answer all queries at one batch size."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        if batch_size == 1:
            for query in queries:
                service.answer(query)
        else:
            for lo in range(0, len(queries), batch_size):
                service.answer_batch(queries[lo : lo + batch_size])
        best = min(best, time.perf_counter() - start)
    return best


def test_batching_scales_ranking_throughput():
    service, queries = _build_ranking()

    # Exactness first: batched answers are bit-identical per column.
    want = [service.answer(q).values for q in queries[:16]]
    for batch_size in BATCH_SIZES[1:]:
        got = service.answer_batch(queries[:16])
        for g, w in zip(got, want):
            assert np.array_equal(g.values, w)

    # Warm-up above also built each shard's StackedPlan, so the timed
    # region measures the steady state a long-lived server runs in.
    results = {}
    for batch_size in BATCH_SIZES:
        seconds = _time_batched(service, queries, batch_size)
        results[batch_size] = {
            "batch_size": batch_size,
            "queries": len(queries),
            "seconds": seconds,
            "queries_per_second": len(queries) / seconds,
        }

    qps_1 = results[1]["queries_per_second"]
    lines = [f"{'batch':>6s} {'queries/s':>12s} {'speedup':>8s}"]
    for batch_size in BATCH_SIZES:
        qps = results[batch_size]["queries_per_second"]
        lines.append(f"{batch_size:6d} {qps:12.1f} {qps / qps_1:7.2f}x")
    emit("batching_throughput", lines)

    OUT_DIR.mkdir(exist_ok=True)
    write_bench_json(
        OUT_DIR / "BENCH_batching.json",
        "batching",
        {
            "phase": "ranking",
            "rows": 2000,
            "columns": 8192,
            "workers": service.num_workers,
            "by_batch_size": {
                str(b): results[b] for b in BATCH_SIZES
            },
            "speedup_at_16": results[16]["queries_per_second"] / qps_1,
        },
    )

    # The acceptance bar: >= 3x queries/sec at batch 16 vs batch 1.
    assert results[16]["queries_per_second"] >= 3.0 * qps_1, (
        f"batch-16 speedup only "
        f"{results[16]['queries_per_second'] / qps_1:.2f}x"
    )
    service.close()
