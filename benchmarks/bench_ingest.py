"""The streaming ingestion plane: throughput, peak RSS, delta speedup.

The paper's preprocessing (SS3.2, Table 7) is an offline pipeline over
the full corpus; this repo's :mod:`repro.ingest` plane reproduces it
as a staged, checkpointed stream so corpus size is bounded by disk,
not RAM.  This bench pins the three numbers that story rests on:

* **docs/sec**: end-to-end streaming build rate over a >= 100k-doc
  synthetic corpus (``INGEST_BENCH_DOCS`` overrides the size);
* **peak RSS**: the build runs in a child process and reports its own
  ``ru_maxrss`` high-water mark, asserted against a fixed budget that
  does NOT scale with the corpus -- the bounded-memory claim;
* **delta-vs-full speedup**: a 2%-mutated snapshot reindexed through
  the delta path (reusing unchanged embeddings and per-cluster hint
  contributions) against a from-scratch rebuild of the same snapshot,
  which must produce a bit-identical artifact.

Emits ``BENCH_ingest.json``.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from benchmarks.conftest import OUT_DIR, emit
from repro.obs.export import write_bench_json

#: Streaming-build corpus size (acceptance bar: >= 100k documents).
STREAM_DOCS = int(os.environ.get("INGEST_BENCH_DOCS", "100000"))

#: Fixed peak-RSS budget for the streaming build.  Deliberately does
#: not scale with STREAM_DOCS: a bounded pipeline's working set is a
#: few batches plus the per-cluster crypto state, not the corpus.
RSS_BUDGET_MB = 768

#: Delta-reindex corpus (smaller: it is built twice more, full + delta).
DELTA_DOCS = 20_000
MUTATE_FRACTION = 0.02

BATCH_SIZE = 2048
WORKERS = 4

_CHILD = """
import json, resource, sys, time
from pathlib import Path

from repro.core.config import TiptoeConfig
from repro.corpus.source import SyntheticDocumentSource
from repro.corpus.synthetic import SyntheticCorpusConfig
from repro.ingest import IngestConfig, run_ingest

docs, batch, workers, root = (
    int(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3]), Path(sys.argv[4])
)
source = SyntheticDocumentSource(
    SyntheticCorpusConfig(
        num_docs=docs,
        num_topics=max(8, docs // 500),
        vocab_size=max(600, docs // 10),
        seed=3,
    ),
    batch_size=batch,
)
start = time.perf_counter()
report = run_ingest(
    source,
    TiptoeConfig(),
    root / "out",
    spool_dir=root / "spool",
    ingest=IngestConfig(batch_size=batch, workers=workers),
)
seconds = time.perf_counter() - start
print(json.dumps({
    "seconds": seconds,
    "maxrss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024,
    "num_docs": report.num_docs,
    "num_clusters": report.num_clusters,
    "generation_tag": report.generation_tag,
}))
"""


def _streaming_build(docs: int, root: Path) -> dict:
    """Run one streaming build in a child process; return its stats.

    The child reports its *own* ``ru_maxrss``, so the number is the
    pipeline's high-water mark alone -- unpolluted by whatever other
    benches already loaded into this process.
    """
    proc = subprocess.run(
        [
            sys.executable, "-c", _CHILD,
            str(docs), str(BATCH_SIZE), str(WORKERS), str(root),
        ],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_ingest_plane(tmp_path):
    # -- bounded-memory streaming build --------------------------------------
    stream = _streaming_build(STREAM_DOCS, tmp_path / "stream")
    docs_per_sec = stream["num_docs"] / stream["seconds"]
    assert stream["num_docs"] == STREAM_DOCS
    assert stream["maxrss_mb"] < RSS_BUDGET_MB, (
        f"streaming build peaked at {stream['maxrss_mb']:.0f} MB;"
        f" budget is {RSS_BUDGET_MB} MB"
    )

    # -- delta vs full reindex of a mutated snapshot -------------------------
    from repro.core import artifacts
    from repro.core.config import TiptoeConfig
    from repro.core.updates import reindex
    from repro.corpus.source import (
        MutatedDocumentSource,
        SyntheticDocumentSource,
    )
    from repro.corpus.synthetic import SyntheticCorpusConfig
    from repro.ingest import IngestConfig, run_ingest

    root = tmp_path / "delta"
    base_source = SyntheticDocumentSource(
        SyntheticCorpusConfig(
            num_docs=DELTA_DOCS,
            num_topics=max(8, DELTA_DOCS // 500),
            vocab_size=max(600, DELTA_DOCS // 10),
            seed=3,
        ),
        batch_size=BATCH_SIZE,
    )
    ingest = IngestConfig(batch_size=BATCH_SIZE, workers=WORKERS)
    run_ingest(
        base_source,
        TiptoeConfig(),
        root / "base",
        spool_dir=root / "spool",
        ingest=ingest,
    )
    mutated = MutatedDocumentSource(base_source, MUTATE_FRACTION, mutate_seed=9)

    start = time.perf_counter()
    delta = reindex(
        root / "base", mutated, root / "delta",
        spool_dir=root / "spool", ingest=ingest,
    )
    delta_seconds = time.perf_counter() - start

    start = time.perf_counter()
    full = reindex(
        root / "base", mutated, root / "full",
        spool_dir=root / "spool", ingest=ingest, full=True,
    )
    full_seconds = time.perf_counter() - start

    assert delta.generation_tag == full.generation_tag
    assert artifacts.artifact_digest(root / "delta") == artifacts.artifact_digest(
        root / "full"
    )
    assert delta.clusters_encrypted < delta.num_clusters
    speedup = full_seconds / delta_seconds
    assert speedup > 1.0, (
        f"delta reindex ({delta_seconds:.1f}s) not faster than full"
        f" rebuild ({full_seconds:.1f}s)"
    )

    lines = [
        f"streaming build: {stream['num_docs']:,} docs in"
        f" {stream['seconds']:.1f}s  ({docs_per_sec:,.0f} docs/s)",
        f"peak RSS: {stream['maxrss_mb']:.0f} MB"
        f" (budget {RSS_BUDGET_MB} MB)",
        "",
        f"delta reindex ({MUTATE_FRACTION:.0%} mutated,"
        f" {DELTA_DOCS:,} docs):",
        f"  delta: {delta_seconds:6.1f}s  "
        f"({delta.docs_embedded:,} docs re-embedded,"
        f" {delta.clusters_encrypted}/{delta.num_clusters}"
        " clusters re-encrypted)",
        f"  full:  {full_seconds:6.1f}s",
        f"  speedup: {speedup:.2f}x  (artifacts bit-identical)",
    ]
    emit("ingest_plane", lines)

    OUT_DIR.mkdir(exist_ok=True)
    write_bench_json(
        OUT_DIR / "BENCH_ingest.json",
        "ingest",
        {
            "stream": {
                "num_docs": stream["num_docs"],
                "seconds": stream["seconds"],
                "docs_per_second": docs_per_sec,
                "peak_rss_mb": stream["maxrss_mb"],
                "rss_budget_mb": RSS_BUDGET_MB,
                "num_clusters": stream["num_clusters"],
                "batch_size": BATCH_SIZE,
                "workers": WORKERS,
            },
            "delta": {
                "num_docs": DELTA_DOCS,
                "mutate_fraction": MUTATE_FRACTION,
                "delta_seconds": delta_seconds,
                "full_seconds": full_seconds,
                "speedup": speedup,
                "docs_embedded": delta.docs_embedded,
                "docs_reused": delta.docs_reused,
                "clusters_encrypted": delta.clusters_encrypted,
                "clusters_reused": delta.clusters_reused,
                "num_clusters": delta.num_clusters,
                "bit_identical": True,
            },
        },
    )
