"""The ahead-of-time plane: serve cold-start and token-mint throughput.

Tiptoe's evaluation (SS6.3, Table 7) keeps the query-independent work
-- the server's hint-key products and the NTT tables behind them --
off the latency-critical path.  This bench measures the two levers
this repo's precompute plane adds:

* **Cold start**: seconds from artifacts-on-disk to a serve that has
  answered its first batch of mint requests, with and without the
  ``precompute.npz`` sidecar.  Without the sidecar every early mint
  re-runs the plaintext-side forward NTTs; with it the tables load
  memory-mapped and minting starts at steady-state cost.
* **Tokens/sec**: sequential ``mint`` vs batched ``mint_many`` vs the
  pipelined ``TokenPool`` (pre-minted stockpile, refill off-path).

Emits ``BENCH_precompute.json``.  Two acceptance bars ride along:
batched+pipelined minting must deliver >= 3x sequential tokens/sec,
and the sidecar must make cold start >= 2x faster.
"""

import time

import numpy as np

from benchmarks.conftest import OUT_DIR, emit
from repro import TiptoeConfig, TiptoeEngine
from repro.core.indexer import TiptoeIndex
from repro.core.precompute import TokenPool
from repro.homenc.token import make_client_keys
from repro.lwe.sampling import seeded_rng
from repro.obs.export import write_bench_json
from repro.rlwe.ntt import clear_ntt_registry

NUM_TOKENS = 16
MINT_BATCH = 8
FIRST_MINTS = 8  # early clients a fresh serve answers sequentially
REPEATS = 2


def _canned_requests(index, count, seed=300):
    """Pre-generated client mint requests (keygen is client-side work;
    the serve only ever sees the encrypted keys)."""
    schemes = {
        "ranking": index.ranking_scheme,
        "url": index.url_scheme,
    }
    return [
        make_client_keys(schemes, seeded_rng(seed + i))[1]
        for i in range(count)
    ]


def _cold_start_seconds(path, requests) -> float:
    """Artifacts-on-disk to first-clients-served, best of REPEATS.

    ``clear_ntt_registry`` drops every cached twiddle table first, so
    each measurement is a true process cold start.
    """
    best = float("inf")
    for _ in range(REPEATS):
        clear_ntt_registry()
        start = time.perf_counter()
        index = TiptoeIndex.load(path)
        engine = TiptoeEngine(index)
        for enc_keys in requests:
            index.token_factory.mint(enc_keys)
        best = min(best, time.perf_counter() - start)
        engine.close()
    return best


def test_precompute_plane(bench_corpus, tmp_path):
    index = TiptoeIndex.build(
        bench_corpus.texts(),
        bench_corpus.urls(),
        TiptoeConfig(),
        rng=np.random.default_rng(5),
    )
    index.save(tmp_path / "plain")
    index.save(tmp_path / "warm", precompute=True)
    requests = _canned_requests(index, NUM_TOKENS)

    # -- serve cold start: with vs without the sidecar -----------------------
    cold = _cold_start_seconds(tmp_path / "plain", requests[:FIRST_MINTS])
    warm = _cold_start_seconds(tmp_path / "warm", requests[:FIRST_MINTS])
    cold_speedup = cold / warm

    # -- tokens/sec: sequential vs mint_many vs pipelined --------------------
    # All three run against the sidecar-less index: the comparison
    # isolates what batching and pipelining buy on their own.
    factory = TiptoeIndex.load(tmp_path / "plain").token_factory

    best_seq = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for enc_keys in requests:
            factory.mint(enc_keys)
        best_seq = min(best_seq, time.perf_counter() - start)

    best_many = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        factory.mint_many(requests)
        best_many = min(best_many, time.perf_counter() - start)

    # Pipelined: a pool pre-stocked off-path hands tokens out in O(1);
    # the timed region is what a request-path taker perceives.
    supply = list(requests)

    def mint_fn(count):
        batch, supply[:] = supply[:count], supply[count:]
        return factory.mint_many(batch)

    pool = TokenPool(mint_fn, depth=NUM_TOKENS, batch=MINT_BATCH)
    pool.start()
    deadline = time.monotonic() + 60
    while pool.size() < NUM_TOKENS and time.monotonic() < deadline:
        time.sleep(0.005)
    assert pool.size() == NUM_TOKENS, "pool never reached target depth"
    start = time.perf_counter()
    taken = [pool.take_nowait() for _ in range(NUM_TOKENS)]
    pipelined_seconds = time.perf_counter() - start
    assert all(t is not None for t in taken)
    pool.close()

    seq_tps = NUM_TOKENS / best_seq
    many_tps = NUM_TOKENS / best_many
    pipe_tps = NUM_TOKENS / pipelined_seconds

    lines = [
        f"{'mode':>24s} {'tokens/s':>12s} {'speedup':>8s}",
        f"{'sequential mint':>24s} {seq_tps:12.1f} {1.0:7.2f}x",
        f"{'mint_many (16)':>24s} {many_tps:12.1f} {many_tps / seq_tps:7.2f}x",
        f"{'pipelined pool':>24s} {pipe_tps:12.1f} {pipe_tps / seq_tps:7.2f}x",
        "",
        f"cold start (no sidecar):   {cold:.3f}s",
        f"cold start (with sidecar): {warm:.3f}s  ({cold_speedup:.2f}x)",
    ]
    emit("precompute_plane", lines)

    OUT_DIR.mkdir(exist_ok=True)
    write_bench_json(
        OUT_DIR / "BENCH_precompute.json",
        "precompute",
        {
            "tokens": NUM_TOKENS,
            "mint_batch": MINT_BATCH,
            "first_mints": FIRST_MINTS,
            "tokens_per_second": {
                "sequential": seq_tps,
                "mint_many": many_tps,
                "pipelined": pipe_tps,
            },
            "mint_many_speedup": many_tps / seq_tps,
            "pipelined_speedup": pipe_tps / seq_tps,
            "cold_start_seconds": {
                "without_sidecar": cold,
                "with_sidecar": warm,
            },
            "cold_start_speedup": cold_speedup,
        },
    )

    # The acceptance bars: >= 3x tokens/sec batched and pipelined, and
    # >= 2x faster serve cold-start with the sidecar.
    assert many_tps >= 3.0 * seq_tps, (
        f"mint_many speedup only {many_tps / seq_tps:.2f}x"
    )
    assert pipe_tps >= 3.0 * seq_tps, (
        f"pipelined speedup only {pipe_tps / seq_tps:.2f}x"
    )
    assert cold_speedup >= 2.0, (
        f"sidecar cold-start speedup only {cold_speedup:.2f}x"
    )
