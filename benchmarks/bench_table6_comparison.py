"""Table 6: Tiptoe vs. private-search alternatives.

Paper rows (per query):

  system                 storage  comm       compute      latency  cost
  Coeus (5M docs)        0 GiB    50 MiB     12,900 c-s   2.8 s    $0.059
  client-side index      48 GiB   0          0            0        0
  Tiptoe text (360M)     0.3 GiB  42+15 MiB  145 c-s      2.7 s    $0.003
  client-side (image)    98 GiB   0          0            0        0
  Tiptoe image (400M)    0.7 GiB  50+21 MiB  339 c-s      3.5 s    $0.008

The Tiptoe rows come from the calibrated analytic model (the measured
system runs at simulation scale; a measured small-scale row is printed
alongside for grounding).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import TiptoeConfig, TiptoeEngine
from repro.evalx.baselines import CoeusModel, client_side_index_bytes
from repro.evalx.costmodel import GIB, MIB, PaperScaleModel

TEXT_DOCS = 364_000_000
IMAGE_DOCS = 400_000_000


def build_rows(bench_corpus):
    model = PaperScaleModel()
    coeus = CoeusModel()
    text = model.text.summary(TEXT_DOCS)
    image = model.image.summary(IMAGE_DOCS, ranking_vcpus=320, url_vcpus=32)
    storage = client_side_index_bytes(TEXT_DOCS)
    storage_img = client_side_index_bytes(IMAGE_DOCS, dim=384)

    # A measured row at simulation scale for grounding.
    engine = TiptoeEngine.build(
        bench_corpus.texts()[:400],
        bench_corpus.urls()[:400],
        TiptoeConfig(),
        rng=np.random.default_rng(0),
    )
    result = engine.search(
        bench_corpus.documents[0].text, np.random.default_rng(1)
    )
    measured = {
        "docs": 400,
        "comm_mib": result.traffic.total_bytes() / MIB,
        "latency_s": result.perceived_latency,
    }
    return coeus, text, image, storage, storage_img, measured


def test_table6_comparison(benchmark, bench_corpus):
    coeus, text, image, storage, storage_img, measured = benchmark.pedantic(
        build_rows, args=(bench_corpus,), rounds=1, iterations=1
    )
    coeus_row = coeus.summary(5_000_000)
    lines = [
        f"{'system':26s} {'storageGiB':>10s} {'comm MiB':>10s}"
        f" {'core-s':>10s} {'latency':>8s} {'$/query':>8s}",
        f"{'coeus (5M docs)':26s} {0:10.1f} {coeus_row['comm_mib']:10.1f}"
        f" {coeus_row['core_seconds']:10.0f} {'2.8':>8s}"
        f" {coeus_row['aws_cost']:8.3f}",
        f"{'client-side index (text)':26s}"
        f" {storage['tiptoe_index_bytes'] / GIB:10.1f} {0:10.1f} {0:10.0f}"
        f" {'0':>8s} {0:8.3f}",
        f"{'tiptoe text (364M)':26s} {0.3:10.1f} {text['total_mib']:10.1f}"
        f" {text['core_seconds']:10.0f} {text['perceived_latency_s']:8.1f}"
        f" {text['aws_cost']:8.3f}",
        f"{'client-side index (image)':26s}"
        f" {storage_img['tiptoe_index_bytes'] / GIB:10.1f} {0:10.1f}"
        f" {0:10.0f} {'0':>8s} {0:8.3f}",
        f"{'tiptoe image (400M)':26s} {0.7:10.1f} {image['total_mib']:10.1f}"
        f" {image['core_seconds']:10.0f} {image['perceived_latency_s']:8.1f}"
        f" {image['aws_cost']:8.3f}",
        "",
        f"measured (simulation, {measured['docs']} docs):"
        f" {measured['comm_mib']:.2f} MiB/query,"
        f" {measured['latency_s']:.2f} s perceived latency",
        "",
        f"coeus-at-C4-scale estimate: {coeus.communication_bytes(TEXT_DOCS) / GIB:.1f} GiB,"
        f" {coeus.core_seconds(TEXT_DOCS):,.0f} core-s,"
        f" ${coeus.aws_cost(TEXT_DOCS):.2f}/query",
    ]
    emit("table6_comparison", lines)

    # Shape assertions from SS8.3.
    assert text["total_mib"] == pytest.approx(56.9, rel=0.1)
    assert coeus.core_seconds(TEXT_DOCS) / text["core_seconds"] > 1000
    assert coeus.aws_cost(TEXT_DOCS) / text["aws_cost"] > 1000
    assert storage["tiptoe_index_bytes"] / GIB == pytest.approx(48, rel=0.15)
    assert image["core_seconds"] > text["core_seconds"]
    # The measured small-scale system really is private *and* cheap:
    # well under a MiB of online traffic at this corpus size.
    assert measured["comm_mib"] < 5
