"""Table 7 (top half): index preprocessing and client downloads.

Paper (text search, 364M docs):

  Embed 92,583 core-h / build centroids 224 / cluster assign 703 /
  balance+PCA 312 / crypto 50  -- total ~0.013 core-s per document;
  client downloads: model 0.27 GiB, centroids 0.02 GiB;
  client per-query preprocessing: 37.7 s.

This bench reports the measured per-component build work (from the
batch jobs' ledger), the per-document total, the client download
sizes, and the measured client-side token-acquisition time -- the
same rows at simulation scale.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import TiptoeConfig, TiptoeEngine

MIB = 1024 * 1024


def test_preprocessing_breakdown(benchmark, bench_corpus):
    texts = bench_corpus.texts()[:600]
    urls = bench_corpus.urls()[:600]

    def build():
        start = time.perf_counter()
        engine = TiptoeEngine.build(
            texts, urls, TiptoeConfig(), rng=np.random.default_rng(0)
        )
        build_s = time.perf_counter() - start
        start = time.perf_counter()
        engine.mint_token(np.random.default_rng(1))
        token_s = time.perf_counter() - start
        return engine, build_s, token_s

    engine, build_s, token_s = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    ledger = engine.index.build_ledger
    num_docs = engine.index.num_docs
    lines = [f"{'component':12s} {'word ops':>15s} {'share':>7s}"]
    total = ledger.total_ops()
    for component in ("embed", "pca", "cluster", "crypto"):
        ops = ledger.total_ops(component)
        lines.append(f"{component:12s} {ops:15,d} {ops / total:7.1%}")
    lines += [
        "",
        f"wall-clock build: {build_s:.2f} s for {num_docs} docs"
        f" ({build_s / num_docs * 1e3:.2f} ms/doc;"
        f" paper: 0.013 core-s/doc at 364M)",
        f"client model download: {engine.index.model_bytes() / MIB:.2f} MiB"
        f" (paper: 276 MiB)",
        f"client centroid metadata: "
        f"{engine.index.client_metadata().download_bytes() / MIB:.3f} MiB"
        f" (paper: ~20 MiB)",
        f"client token acquisition: {token_s:.2f} s"
        f" (paper client preprocessing: 37.7 s/query)",
    ]
    emit("table7_preprocessing", lines)

    # Every pipeline stage is accounted, and the crypto count matches
    # the schemes' own formulas exactly.  (Component *shares* differ
    # from the paper's: its embed column is GPU transformer inference,
    # which dwarfs everything at 364M docs; our LSA embedding is cheap,
    # so crypto dominates at simulation scale.)
    for component in ("embed", "pca", "cluster", "crypto"):
        assert ledger.total_ops(component) > 0
    expected_crypto = engine.index.ranking_scheme.inner.preprocess_word_ops(
        engine.index.layout.rows
    ) + engine.index.url_scheme.inner.preprocess_word_ops(
        engine.index.url_db.num_rows
    )
    assert ledger.total_ops("crypto") == expected_crypto
    meta_bytes = engine.index.client_metadata().download_bytes()
    assert meta_bytes < engine.index.index_storage_bytes()
    assert build_s / num_docs < 1.0  # well under a second per document
