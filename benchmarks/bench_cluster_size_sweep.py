"""Extension experiment: the SS4.2 cluster-size rule, swept.

SS4.2 sets the cluster count to ~sqrt(N) (refined to sqrt(N/d) for
large d) because total online communication
``up + down ~ d*C*8 + (N/C)*8`` is minimized when the two terms
balance.  This bench sweeps the cluster size around that optimum:

* *communication* (paper scale, analytic): a U-shaped curve whose
  minimum sits at the sqrt rule;
* *search quality* (simulation scale, measured): smaller clusters mean
  more centroids to miss (lower hit rate), bigger clusters mean more
  communication -- quality rises monotonically with cluster size while
  cost does not, which is exactly the tension the rule settles.
"""

import math

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.config import TiptoeConfig
from repro.evalx.metrics import mrr_at_k
from repro.evalx.quality import TiptoeQualitySim, cluster_hit_rate

PAPER_DOCS = 364_000_000
DIM = 192
DUP = 1.2


def online_comm_bytes(cluster_size: int) -> float:
    """The SS4.2 communication expression at paper scale."""
    slots = PAPER_DOCS * DUP
    num_clusters = math.ceil(slots / cluster_size)
    return DIM * num_clusters * 8 + cluster_size * 8


def test_comm_minimized_at_sqrt_rule(benchmark):
    optimal = int(math.sqrt(PAPER_DOCS * DUP * DIM))
    factors = [1 / 8, 1 / 4, 1 / 2, 1, 2, 4, 8]
    rows = benchmark.pedantic(
        lambda: [
            (f, online_comm_bytes(max(1, int(optimal * f)))) for f in factors
        ],
        rounds=1,
        iterations=1,
    )
    lines = [f"{'cluster size':>14s} {'ranking comm MiB':>17s}"]
    for f, comm in rows:
        marker = "  <- sqrt rule" if f == 1 else ""
        lines.append(
            f"{int(optimal * f):14,d} {comm / 2**20:17.2f}{marker}"
        )
    emit("cluster_size_comm", lines)
    comms = dict(rows)
    # U-shape: the sqrt point beats both extremes...
    assert comms[1] < comms[1 / 8]
    assert comms[1] < comms[8]
    # ...and is within 2x of every swept point's optimum neighborhood.
    assert comms[1] <= min(comms.values()) * 1.3


def test_quality_rises_with_cluster_size(
    benchmark, bench_corpus, bench_queries, bench_embedder, bench_embeddings
):
    sizes = (6, 12, 30)

    def sweep():
        rows = []
        targets = [q.target_doc_id for q in bench_queries.queries]
        for size in sizes:
            sim = TiptoeQualitySim.build(
                bench_corpus.texts(),
                bench_corpus.urls(),
                TiptoeConfig(
                    embedding_dim=64,
                    pca_dim=24,
                    target_cluster_size=size,
                    url_batch_size=10,
                ),
                embedder=bench_embedder,
                embeddings=bench_embeddings,
                rng=np.random.default_rng(size),
            )
            cluster_sim = TiptoeQualitySim(index=sim.index, mode="cluster")
            mrr_full = mrr_at_k(
                [sim.rank(q.text) for q in bench_queries.queries], targets
            )
            mrr_rank_only = mrr_at_k(
                [cluster_sim.rank(q.text) for q in bench_queries.queries],
                targets,
            )
            rows.append(
                (
                    size,
                    sim.index.clusters.num_clusters,
                    mrr_rank_only,
                    mrr_full,
                    cluster_hit_rate(sim, bench_queries),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{'target size':>12s} {'clusters':>9s} {'rank MRR':>9s}"
        f" {'full MRR':>9s} {'hit rate':>9s}"
    ]
    for size, clusters, mrr_rank, mrr_full, hit in rows:
        lines.append(
            f"{size:12d} {clusters:9d} {mrr_rank:9.3f} {mrr_full:9.3f}"
            f" {hit:9.2f}"
        )
    lines.append(
        "note: 'full MRR' includes the URL-batch restriction; with a"
        " fixed batch size, very large clusters spread results over"
        " more batches, which is why the full pipeline does not improve"
        " monotonically even as the ranking step does."
    )
    emit("cluster_size_quality", lines)

    # Hit rate grows with cluster size, and so does the quality of the
    # ranking step itself (the batch restriction is a separate knob).
    hits = [r[4] for r in rows]
    assert hits == sorted(hits)
    rank_mrrs = [r[2] for r in rows]
    assert rank_mrrs[-1] >= rank_mrrs[0]
