"""Shared fixtures and table printing for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and
prints the corresponding rows/series (run with ``-s`` to see them
inline; a copy is also written under ``benchmarks/out/``).
"""

import pathlib

import numpy as np
import pytest

from repro.corpus import QueryBenchmark, SyntheticCorpus, SyntheticCorpusConfig
from repro.embeddings import LsaEmbedder

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit(name: str, lines: list[str]) -> None:
    """Print a report block and persist it for later inspection."""
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}\n")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def bench_corpus():
    """The C4 stand-in used by the quality benchmarks."""
    return SyntheticCorpus.generate(
        SyntheticCorpusConfig(
            num_docs=1500, num_topics=30, vocab_size=2500, seed=5
        )
    )


@pytest.fixture(scope="session")
def bench_queries(bench_corpus):
    """The MS MARCO stand-in benchmark queries."""
    return QueryBenchmark.generate(bench_corpus, 200, np.random.default_rng(7))


@pytest.fixture(scope="session")
def bench_embedder(bench_corpus):
    return LsaEmbedder.fit(bench_corpus.texts(), dim=64)


@pytest.fixture(scope="session")
def bench_embeddings(bench_corpus, bench_embedder):
    return bench_embedder.embed_batch(bench_corpus.texts())
