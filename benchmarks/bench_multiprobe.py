"""Extension experiment: multi-cluster probing (SS8.2's hypothetical).

"Querying more clusters could improve search quality, but would
substantially increase Tiptoe's costs."  This bench quantifies that
trade on the benchmark corpus: MRR@100 and cluster-hit rate versus the
number of probed clusters, with the per-query online cost scaling
linearly in the probe count (each probe is a full ranking query plus a
URL fetch).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.config import TiptoeConfig
from repro.evalx.costmodel import MIB, TiptoeCostModel
from repro.evalx.metrics import mrr_at_k
from repro.evalx.quality import TiptoeQualitySim

PAPER_DOCS = 364_000_000


def test_multiprobe_quality_cost_tradeoff(
    benchmark, bench_corpus, bench_queries, bench_embedder, bench_embeddings
):
    cfg = TiptoeConfig(
        embedding_dim=64, pca_dim=24, target_cluster_size=8, url_batch_size=10
    )
    base = TiptoeQualitySim.build(
        bench_corpus.texts(),
        bench_corpus.urls(),
        cfg,
        embedder=bench_embedder,
        embeddings=bench_embeddings,
        rng=np.random.default_rng(1),
    )
    targets = [q.target_doc_id for q in bench_queries.queries]
    model = TiptoeCostModel()
    online_mib = model.online_bytes(PAPER_DOCS) / MIB
    online_core_s = (
        model.ranking_word_ops(PAPER_DOCS) + model.url_word_ops(PAPER_DOCS)
    ) / model.ops_per_core_second

    def sweep():
        rows = []
        for probes in (1, 2, 4, 8):
            sim = TiptoeQualitySim(
                index=base.index, mode="cluster+batch", probes=probes
            )
            ranked = [sim.rank(q.text) for q in bench_queries.queries]
            hit = np.mean(
                [
                    any(
                        c
                        in sim.index.clusters.doc_to_clusters[t]
                        for c in sim.index.clusters.nearest_clusters(
                            sim._embed(q.text)[0], probes
                        )
                    )
                    for q, t in zip(bench_queries.queries, targets)
                ]
            )
            rows.append(
                {
                    "probes": probes,
                    "mrr": mrr_at_k(ranked, targets),
                    "hit_rate": float(hit),
                    "online_mib": online_mib * probes,
                    "core_s": online_core_s * probes,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{'probes':>7s} {'MRR@100':>8s} {'hit rate':>9s}"
        f" {'online MiB':>11s} {'core-s':>8s}"
    ]
    for r in rows:
        lines.append(
            f"{r['probes']:7d} {r['mrr']:8.3f} {r['hit_rate']:9.2f}"
            f" {r['online_mib']:11.1f} {r['core_s']:8.1f}"
        )
    emit("multiprobe_tradeoff", lines)

    # Quality and hit rate improve with probes; cost scales linearly.
    assert rows[-1]["mrr"] >= rows[0]["mrr"]
    assert rows[-1]["hit_rate"] > rows[0]["hit_rate"]
    assert rows[-1]["online_mib"] == pytest.approx(
        8 * rows[0]["online_mib"]
    )
