"""SS6 ablation: token mode vs classic hint download over a session.

SS6.1-6.2: plain SimplePIR amortizes a huge one-time hint download
("99.9% of this download" reusable) but at web scale the hint is
~0.75 GiB and changes with every corpus update; the double layer
removes it "at the cost of increasing the per-query communication by
roughly 4x".  This bench runs a multi-query session in both modes over
the same index and reports the cumulative-traffic crossover, plus the
client-storage difference (Table 6's 0.3 GiB vs 48 GiB contrast in
miniature).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import TiptoeConfig, TiptoeEngine
from repro.core.classic import ClassicTiptoeClient

SESSION_QUERIES = 5


def run_session(bench_corpus):
    engine = TiptoeEngine.build(
        bench_corpus.texts()[:500],
        bench_corpus.urls()[:500],
        TiptoeConfig(),
        rng=np.random.default_rng(0),
    )
    queries = [bench_corpus.documents[i].text for i in range(SESSION_QUERIES)]

    token_client = engine.new_client(np.random.default_rng(1))
    token_cumulative = []
    total = 0
    for q in queries:
        total += token_client.search(q).traffic.total_bytes()
        token_cumulative.append(total)

    classic_client = ClassicTiptoeClient(engine, np.random.default_rng(2))
    classic_client.fetch_hints()
    classic_cumulative = []
    total = classic_client.hint_traffic.total_bytes()
    for q in queries:
        total += classic_client.search(q).traffic.total_bytes()
        classic_cumulative.append(total)
    return engine, classic_client, token_cumulative, classic_cumulative


def test_session_amortization(benchmark, bench_corpus):
    engine, classic_client, token_cum, classic_cum = benchmark.pedantic(
        run_session, args=(bench_corpus,), rounds=1, iterations=1
    )
    lines = [f"{'query #':>8s} {'token mode B':>14s} {'classic mode B':>15s}"]
    for i, (t, c) in enumerate(zip(token_cum, classic_cum)):
        lines.append(f"{i + 1:8d} {t:14,d} {c:15,d}")
    token_per_query = token_cum[0]
    classic_steady = classic_cum[-1] - classic_cum[-2]
    # The paper's "roughly 4x" is a *paper-scale* statement: per-query
    # token traffic vs the online-only traffic an amortized hint
    # leaves.  At paper parameters the model reproduces it directly.
    from repro.evalx.costmodel import TiptoeCostModel

    model = TiptoeCostModel()
    paper_ratio = model.total_bytes(364_000_000) / model.online_bytes(
        364_000_000
    )
    lines += [
        "",
        f"client hint storage (classic): {classic_client.hint_storage_bytes():,} B"
        " -- token mode stores ~0",
        f"steady-state per-query: token {token_per_query:,} B vs"
        f" classic {classic_steady:,} B",
        f"paper-scale per-query overhead of token mode:"
        f" {paper_ratio:.1f}x (SS6: 'roughly 4x');"
        " at toy lattice dimensions the hint is disproportionately"
        " small, so the measured ratio is larger",
    ]
    emit("session_amortization", lines)

    # Classic mode's steady-state per-query traffic is lower; the hint
    # download and storage are the costs it pays for that.
    token_steady = token_cum[-1] - token_cum[-2]
    assert classic_steady < token_steady
    assert classic_client.hint_storage_bytes() > 0
    assert classic_cum[0] > classic_steady * 5  # the first-query cliff
    # The paper's 4x claim, from the calibrated model.
    assert 3.0 < paper_ratio < 5.0
