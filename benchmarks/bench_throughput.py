"""Table 7 (throughput rows): sustained queries/second per phase.

Paper (text search): 0.5 q/s token generation, 2.9 q/s ranking, 5.0
q/s URL retrieval -- i.e., per query, token generation is the most
expensive phase and URL retrieval the cheapest.  Absolute numbers here
are NumPy-at-simulation-scale; the *ordering* is the structural claim
this bench checks, along with the parallel-worker speedup behind the
paper's "throughput scales linearly with the number of machines".
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import TiptoeConfig, TiptoeEngine
from repro.core.cluster_runtime import ShardedRankingService
from repro.core.loadgen import measure_throughput


@pytest.fixture(scope="module")
def throughput_engine(bench_corpus):
    return TiptoeEngine.build(
        bench_corpus.texts()[:700],
        bench_corpus.urls()[:700],
        TiptoeConfig(),
        rng=np.random.default_rng(0),
    )


def test_phase_throughput_ordering(benchmark, throughput_engine):
    report = benchmark.pedantic(
        measure_throughput,
        args=(throughput_engine,),
        kwargs={"num_queries": 12},
        rounds=1,
        iterations=1,
    )
    lines = [f"{'phase':10s} {'queries/s':>10s} {'paper q/s':>10s}"]
    paper = {"token": 0.5, "ranking": 2.9, "url": 5.0}
    for phase, qps in report.rows():
        lines.append(f"{phase:10s} {qps:10.1f} {paper[phase]:10.1f}")
    emit("table7_throughput", lines)
    # Structural ordering: URL retrieval cheapest, token gen dearest.
    assert report.url.queries_per_second > report.ranking.queries_per_second
    assert (
        report.ranking.queries_per_second > report.token.queries_per_second
    )


def test_parallel_workers_speed_up_ranking(benchmark):
    """SS8.5: doubling the machines roughly doubles throughput.

    Measured on a compute-bound shard size (where the paper's claim
    lives); in-process threads share memory bandwidth so the speedup
    is partial, but parallel must beat serial and answers must match.
    """
    from repro.homenc.double import DoubleLheParams, DoubleLheScheme
    from repro.lwe import LweParams
    from repro.lwe.sampling import seeded_rng

    dim = 16
    clusters = 512
    rows = 2000
    inner = LweParams(
        n=64, q_bits=64, p=2**16, sigma=81920.0, m=dim * clusters
    )
    scheme = DoubleLheScheme(
        DoubleLheParams(inner=inner, outer_n=64), a_seed=b"T" * 32
    )
    rng = seeded_rng(1)
    matrix = rng.integers(-8, 8, size=(rows, dim * clusters))
    serial = ShardedRankingService.build(scheme, matrix, dim, 4)
    parallel = ShardedRankingService.build(scheme, matrix, dim, 4)
    parallel.parallel = True
    keys = scheme.gen_keys(rng)
    from repro.core.ranking import RankingClient

    client = RankingClient(scheme, dim=dim, num_clusters=clusters)
    query = client.build_query(keys, rng.integers(-8, 8, dim), 0, rng)

    def run_both():
        parallel.answer(query)  # warm the pool
        t0 = time.perf_counter()
        for _ in range(3):
            a_serial = serial.answer(query)
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(3):
            a_parallel = parallel.answer(query)
        parallel_s = time.perf_counter() - t0
        return a_serial, a_parallel, serial_s, parallel_s

    a_serial, a_parallel, serial_s, parallel_s = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    emit(
        "parallel_workers",
        [
            f"matrix: {rows} x {dim * clusters} over 4 shards",
            f"serial answer: {serial_s / 3 * 1e3:.2f} ms",
            f"parallel answer: {parallel_s / 3 * 1e3:.2f} ms",
            f"speedup: {serial_s / parallel_s:.2f}x",
        ],
    )
    assert np.array_equal(a_serial.values, a_parallel.values)
    assert parallel_s < serial_s * 1.2
