"""Table 7 (throughput rows): sustained queries/second per phase.

Paper (text search): 0.5 q/s token generation, 2.9 q/s ranking, 5.0
q/s URL retrieval -- i.e., per query, token generation is the most
expensive phase and URL retrieval the cheapest.  Absolute numbers here
are NumPy-at-simulation-scale; the *ordering* is the structural claim
this bench checks, along with the parallel-worker speedup behind the
paper's "throughput scales linearly with the number of machines".
"""

import json
import time

import numpy as np
import pytest

from benchmarks.conftest import OUT_DIR, emit
from repro import TiptoeConfig, TiptoeEngine, obs
from repro.core.cluster_runtime import ShardedRankingService
from repro.core.loadgen import measure_throughput, write_bench_files


@pytest.fixture(scope="module")
def throughput_engine(bench_corpus):
    return TiptoeEngine.build(
        bench_corpus.texts()[:700],
        bench_corpus.urls()[:700],
        TiptoeConfig(),
        rng=np.random.default_rng(0),
    )


def test_phase_throughput_ordering(benchmark, throughput_engine):
    report = benchmark.pedantic(
        measure_throughput,
        args=(throughput_engine,),
        kwargs={"num_queries": 12},
        rounds=1,
        iterations=1,
    )
    lines = [f"{'phase':10s} {'queries/s':>10s} {'paper q/s':>10s}"]
    paper = {"token": 0.5, "ranking": 2.9, "url": 5.0}
    for phase, qps in report.rows():
        lines.append(f"{phase:10s} {qps:10.1f} {paper[phase]:10.1f}")
    emit("table7_throughput", lines)
    # Structural ordering: URL retrieval cheapest, token gen dearest.
    assert report.url.queries_per_second > report.ranking.queries_per_second
    assert (
        report.ranking.queries_per_second > report.token.queries_per_second
    )


def test_parallel_workers_speed_up_ranking(benchmark):
    """SS8.5: doubling the machines roughly doubles throughput.

    Measured on a compute-bound shard size (where the paper's claim
    lives); in-process threads share memory bandwidth so the speedup
    is partial, but parallel must beat serial and answers must match.
    """
    from repro.homenc.double import DoubleLheParams, DoubleLheScheme
    from repro.lwe import LweParams
    from repro.lwe.sampling import seeded_rng

    dim = 16
    clusters = 512
    rows = 2000
    inner = LweParams(
        n=64, q_bits=64, p=2**16, sigma=81920.0, m=dim * clusters
    )
    scheme = DoubleLheScheme(
        DoubleLheParams(inner=inner, outer_n=64), a_seed=b"T" * 32
    )
    rng = seeded_rng(1)
    matrix = rng.integers(-8, 8, size=(rows, dim * clusters))
    serial = ShardedRankingService.build(scheme, matrix, dim, 4)
    parallel = ShardedRankingService.build(scheme, matrix, dim, 4)
    parallel.parallel = True
    keys = scheme.gen_keys(rng)
    from repro.core.ranking import RankingClient

    client = RankingClient(scheme, dim=dim, num_clusters=clusters)
    query = client.build_query(keys, rng.integers(-8, 8, dim), 0, rng)

    def run_both():
        parallel.answer(query)  # warm the pool
        t0 = time.perf_counter()
        for _ in range(3):
            a_serial = serial.answer(query)
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(3):
            a_parallel = parallel.answer(query)
        parallel_s = time.perf_counter() - t0
        return a_serial, a_parallel, serial_s, parallel_s

    a_serial, a_parallel, serial_s, parallel_s = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    emit(
        "parallel_workers",
        [
            f"matrix: {rows} x {dim * clusters} over 4 shards",
            f"serial answer: {serial_s / 3 * 1e3:.2f} ms",
            f"parallel answer: {parallel_s / 3 * 1e3:.2f} ms",
            f"speedup: {serial_s / parallel_s:.2f}x",
        ],
    )
    assert np.array_equal(a_serial.values, a_parallel.values)
    assert parallel_s < serial_s * 1.2


def test_bench_json_artifacts(throughput_engine):
    """measure_throughput exports the versioned BENCH_*.json files.

    CI uploads these as artifacts, so every run leaves a
    machine-readable throughput + latency trajectory (EXPERIMENTS.md,
    "BENCH file schema").
    """
    report = measure_throughput(
        throughput_engine, num_queries=6, rng=np.random.default_rng(3)
    )
    tp_path, lat_path = write_bench_files(report, OUT_DIR)
    tp = json.loads(tp_path.read_text())
    lat = json.loads(lat_path.read_text())
    assert tp["schema"] == obs.BENCH_SCHEMA
    assert lat["schema"] == obs.BENCH_SCHEMA
    assert set(tp["data"]["phases"]) == {"token", "ranking", "url"}
    for phase, row in tp["data"]["phases"].items():
        assert row["queries_per_second"] > 0, phase
    for phase, row in lat["data"]["phases"].items():
        assert row["count"] > 0, phase
        assert 0 <= row["p50_s"] <= row["p95_s"] <= row["p99_s"], phase
    emit(
        "bench_json_artifacts",
        [f"{p.name}: {p.stat().st_size} bytes" for p in (tp_path, lat_path)],
    )


def test_full_query_trace_dump(throughput_engine):
    """A traced query yields the full nested span tree, dumped as JSON.

    The trace is the paper's Figure-2 data path made visible: token
    acquisition, embedding, the sharded ranking scan (one span per
    worker), then URL PIR.
    """
    tracer, registry = obs.enable()
    try:
        throughput_engine.search("private search", np.random.default_rng(9))
        root = tracer.last_trace()
    finally:
        obs.disable()
    assert root is not None and root.name == "client.search"
    assert root.child_names() == ["token", "embed", "ranking", "url"]
    (coord,) = root.find("ranking.answer")
    workers = coord.children
    assert workers and all(s.name == "ranking.worker" for s in workers)
    snap = registry.snapshot()
    assert snap["histograms"]["kernel.lwe.matmul"]["count"] > 0
    path = obs.dump_trace(root, OUT_DIR / "TRACE_query.json")
    doc = json.loads(path.read_text())
    assert doc["schema"] == obs.TRACE_SCHEMA
    emit(
        "full_query_trace",
        obs.render_span_tree(root)[:12] + [f"trace written to {path.name}"],
    )


def test_noop_instrumentation_overhead():
    """Acceptance: disabled obs costs < 5% on the ranking scan kernel.

    Compares ``modular.matmul`` (which carries the kernel-timer call
    site) against the raw ``a @ b`` it wraps, min-of-rounds to shed
    scheduler noise.  The disabled fast path is one module-global read
    plus one branch.
    """
    from repro.lwe import modular

    assert not obs.enabled()
    rng = np.random.default_rng(11)
    a = rng.integers(0, 2**63, size=(2000, 4096), dtype=np.uint64)
    v = rng.integers(0, 2**63, size=4096, dtype=np.uint64)

    def best_of(fn, rounds=7):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    def raw():
        with np.errstate(over="ignore"):
            return a @ v

    raw()  # warm caches / BLAS init
    raw_s = best_of(raw)
    wrapped_s = best_of(lambda: modular.matmul(a, v, 64))
    overhead = wrapped_s / raw_s - 1.0
    emit(
        "noop_overhead",
        [
            f"raw matvec: {raw_s * 1e3:.3f} ms",
            f"modular.matmul (obs call site): {wrapped_s * 1e3:.3f} ms",
            f"overhead: {overhead * 100:+.2f}%",
        ],
    )
    assert overhead < 0.05
