"""SS6.1 kernel claims: throughput and size micro-benchmarks.

What the paper claims for the crypto layer, checked here on real
kernels (absolute throughput differs -- our kernels are NumPy, the
paper's are Go/AVX -- but every *ratio* is structural):

* after preprocessing, Apply costs ~2 word ops per matrix entry and
  runs near plaintext matmul speed;
* the evaluated ciphertext is ~4 * lambda times larger than the
  plaintext result, which is why the double layer exists;
* double-layer compression shrinks the hint download by orders of
  magnitude at a ~4x online-communication overhead (SS6).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.homenc.double import DoubleLheParams, DoubleLheScheme
from repro.lwe import LweParams, RegevScheme
from repro.lwe.sampling import seeded_rng
from repro.rlwe import BfvParams, BfvScheme


@pytest.fixture(scope="module")
def regev():
    params = LweParams(n=512, q_bits=64, p=2**16, sigma=81920.0, m=4096)
    scheme = RegevScheme(params=params, a_seed=b"K" * 32)
    rng = seeded_rng(0)
    sk = scheme.gen_secret(rng)
    # Pre-lifted into the ring, as a deployed server stores it.
    from repro.lwe import modular

    matrix = modular.to_ring(
        rng.integers(-8, 8, size=(1024, params.m)), params.q_bits
    )
    ct = scheme.encrypt(sk, rng.integers(-8, 8, params.m), rng)
    return scheme, sk, matrix, ct


def test_apply_throughput_vs_plaintext(benchmark, regev):
    """Apply should run within ~4x of a plaintext integer matmul."""
    scheme, _, matrix, ct = regev
    ring_matrix = np.asarray(matrix, dtype=np.uint64)
    plain_vec = np.abs(ct.c).astype(np.uint64)

    encrypted = benchmark.pedantic(
        scheme.apply, args=(matrix, ct), rounds=5, iterations=1
    )
    import time

    t0 = time.perf_counter()
    for _ in range(5):
        with np.errstate(over="ignore"):
            ring_matrix @ plain_vec
    plaintext_s = (time.perf_counter() - t0) / 5

    ops = scheme.apply_word_ops(matrix.shape[0])
    measured = ops / benchmark.stats.stats.mean
    emit(
        "crypto_apply_throughput",
        [
            f"matrix: {matrix.shape[0]} x {matrix.shape[1]} (q = 2^64)",
            f"word ops per Apply: {ops:,}",
            f"measured throughput: {measured:,.0f} word-ops/core-s",
            f"paper hardware constant: 3.0e9 word-ops/core-s",
            f"plaintext matmul: {plaintext_s * 1e3:.2f} ms,"
            f" Apply: {benchmark.stats.stats.mean * 1e3:.2f} ms",
        ],
    )
    assert len(encrypted) == matrix.shape[0]
    # Homomorphic evaluation at (near-)plaintext speed -- the headline
    # property of the preprocessing scheme.
    assert benchmark.stats.stats.mean < plaintext_s * 4


def test_ciphertext_expansion_factor(benchmark, regev):
    """Evaluated ciphertexts are ~4 * lambda larger than plaintexts."""
    scheme, sk, matrix, ct = regev
    answer = benchmark.pedantic(
        scheme.apply, args=(matrix, ct), rounds=1, iterations=1
    )
    hint = scheme.preprocess(matrix)
    rows = matrix.shape[0]
    plaintext_bytes = rows * 2  # 16-bit plaintext entries
    # Without compression the client needs answer + hint.
    download = scheme.answer_bytes(rows) + scheme.hint_bytes(rows)
    expansion = download / plaintext_bytes
    lam = scheme.params.n
    emit(
        "crypto_ciphertext_expansion",
        [
            f"plaintext result: {plaintext_bytes:,} bytes",
            f"answer + hint: {download:,} bytes",
            f"expansion: {expansion:,.0f}x"
            f" (paper: (64/16) * lambda = {4 * lam:,}x)",
        ],
    )
    assert expansion == pytest.approx(4 * lam, rel=0.1)
    assert len(answer) == rows


def test_double_layer_compression(benchmark):
    """SS6.2: hint download collapses; online traffic grows ~4x or less."""
    inner = LweParams(n=64, q_bits=64, p=2**12, sigma=6.4, m=128)
    scheme = DoubleLheScheme(
        DoubleLheParams(inner=inner, outer_n=64), a_seed=b"C" * 32
    )
    rng = seeded_rng(1)
    keys = scheme.gen_keys(rng)
    enc_key = scheme.encrypt_key(keys, rng)
    matrix = rng.integers(-8, 8, size=(512, inner.m))
    prep = scheme.preprocess(matrix)
    compressed = benchmark.pedantic(
        scheme.evaluate_hint, args=(enc_key, prep), rounds=3, iterations=1
    )
    raw_hint = scheme.inner.hint_bytes(512)
    token = compressed.wire_bytes()
    emit(
        "crypto_double_layer",
        [
            f"raw SimplePIR hint: {raw_hint:,} bytes",
            f"compressed (token) download: {token:,} bytes",
            f"hint compression: {raw_hint / token:,.1f}x",
            f"one-time key upload: {enc_key.wire_bytes():,} bytes",
        ],
    )
    assert raw_hint / token > 2
    product = scheme.decrypt_hint_product(keys, compressed)
    assert product.shape == (512,)


def test_bfv_plain_multiply_throughput(benchmark):
    """The outer scheme may be slow -- it only touches lambda*sqrt(N)."""
    scheme = BfvScheme(BfvParams.create(n=2048, t=65537, num_primes=3))
    rng = seeded_rng(2)
    sk = scheme.gen_secret(rng)
    ct = scheme.encrypt(sk, rng.integers(0, 65537, 2048), rng)
    plain = scheme.ring.to_ntt(
        scheme.ring.from_signed(rng.integers(-100, 100, 2048))
    )
    benchmark.pedantic(
        scheme.mul_plain_ntt, args=(ct, plain), rounds=10, iterations=5
    )
    per_coeff = benchmark.stats.stats.mean / 2048
    emit(
        "crypto_bfv_throughput",
        [
            f"ring dim 2048, 3 RNS primes",
            f"plain multiply: {benchmark.stats.stats.mean * 1e6:.1f} us",
            f"per coefficient: {per_coeff * 1e9:.1f} ns",
        ],
    )
    assert benchmark.stats.stats.mean < 0.05
