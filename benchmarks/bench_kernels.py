"""Kernel backends: stacked-GEMM throughput across all four legs.

The ranking scan is one exact mod-2^32 GEMM per batch; the kernel
refactor makes its execution strategy pluggable (repro.lwe.backends).
This bench answers the three questions that refactor exists for:

* does the shared-memory multiprocessing backend actually escape the
  GIL -- queries/sec at batch sizes 1, 4, 16 on a paper-shaped
  ranking matrix (4-bit quantized entries, BLAS-limb regime), reference
  vs multiprocess;
* does the cffi-compiled native backend beat *both* -- same grid, one
  GIL-released C call over native threads, no per-batch copies; and
* does the build-time autotuner pick a plan at least as fast as the
  untuned default on this machine.

Bit-identity is asserted before any timing: a backend that is fast but
wrong is not a backend.  The emitted ``BENCH_kernels.json``
(``repro.obs.bench/v1``) records throughput per (backend, batch) so
the perf trajectory is versioned alongside the paper tables.

Speedup bars are environment-gated: the >= 2x multiprocess and >= 3x
cnative batch-16 asserts only apply on machines with >= 4 cores (and,
for cnative, a working C toolchain).  A single-core or compiler-less
CI runner still runs everything else -- exactness, the tuner, the
JSON artifact -- and the cnative column simply reports availability.
"""

import os
import time

import numpy as np

from benchmarks.conftest import OUT_DIR, emit
from repro.lwe import modular
from repro.lwe.backends import backend_available, get_backend, tune_matrix
from repro.lwe.sampling import seeded_rng
from repro.obs.export import write_bench_json

#: Ranking-scan geometry: ~1/8 of the paper's per-shard slice, 4-bit
#: quantized embedding entries (the BLAS-limb regime serve runs in).
ROWS = 1536
COLS = 4096
Q_BITS = 32
BATCH_SIZES = (1, 4, 16)
REPEATS = 3


def _build_case():
    rng = seeded_rng(7)
    matrix = rng.integers(-8, 8, size=(ROWS, COLS))
    stacks = {
        batch: modular.to_ring(
            rng.integers(0, 1 << 31, size=(COLS, batch)), Q_BITS
        )
        for batch in BATCH_SIZES
    }
    return matrix, stacks


def _time_plan(plan, stacked) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        plan.matmul(stacked)
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_backend_throughput():
    matrix, stacks = _build_case()
    ring = modular.to_ring(matrix, Q_BITS)
    expected = {
        batch: modular.matmul(ring, stacked, Q_BITS)
        for batch, stacked in stacks.items()
    }

    cnative_ok = backend_available("cnative")
    backends = ["reference", "multiprocess"] + (
        ["cnative"] if cnative_ok else []
    )
    results = {name: {} for name in backends}
    for name in backends:
        plan = get_backend(name).plan(matrix, Q_BITS)
        try:
            for batch in BATCH_SIZES:
                # Exactness gate doubles as warm-up: the timed region
                # below measures a long-lived server's steady state.
                assert np.array_equal(
                    plan.matmul(stacks[batch]), expected[batch]
                ), f"{name} is not bit-identical at batch {batch}"
                seconds = _time_plan(plan, stacks[batch])
                results[name][batch] = {
                    "batch_size": batch,
                    "seconds": seconds,
                    "queries_per_second": batch / seconds,
                }
        finally:
            plan.close()

    # The autotuner's pick vs the untuned default (reference, derived
    # limbs) at its tuning batch size.  The default is *re-timed* here,
    # back to back with the tuned plan: on a loaded shared runner the
    # table measurements above can be minutes stale, and comparing
    # across that drift flakes; a paired measurement shares the load.
    tuned = tune_matrix(matrix, Q_BITS, batch_size=16, repeats=REPEATS)
    default_plan = get_backend("reference").plan(matrix, Q_BITS)
    try:
        default_plan.matmul(stacks[16])  # warm-up
        default_qps = 16 / _time_plan(default_plan, stacks[16])
    finally:
        default_plan.close()
    tuned_plan = get_backend(tuned.backend).plan(
        matrix, Q_BITS, **tuned.plan_kwargs()
    )
    try:
        assert np.array_equal(
            tuned_plan.matmul(stacks[16]), expected[16]
        ), "tuned plan is not bit-identical"
        tuned_qps = 16 / _time_plan(tuned_plan, stacks[16])
    finally:
        tuned_plan.close()

    lines = [f"{'backend':>12s} {'batch':>6s} {'queries/s':>12s}"]
    for name in backends:
        for batch in BATCH_SIZES:
            qps = results[name][batch]["queries_per_second"]
            lines.append(f"{name:>12s} {batch:6d} {qps:12.1f}")
    lines.append(
        f"{'tuned(' + tuned.backend + ')':>12s} {16:6d} {tuned_qps:12.1f}"
    )
    if not cnative_ok:
        lines.append("(no C toolchain: cnative column omitted)")

    cores = os.cpu_count() or 1
    speedup_16 = (
        results["multiprocess"][16]["queries_per_second"] / default_qps
    )
    cnative_speedup_16 = (
        results["cnative"][16]["queries_per_second"] / default_qps
        if cnative_ok
        else None
    )
    if cores < 4:
        lines.append(
            f"({cores} core(s): skipping the speedup asserts)"
        )
    emit("kernel_backends", lines)
    OUT_DIR.mkdir(exist_ok=True)
    write_bench_json(
        OUT_DIR / "BENCH_kernels.json",
        "kernels",
        {
            "rows": ROWS,
            "columns": COLS,
            "q_bits": Q_BITS,
            "cores": cores,
            "cnative_available": cnative_ok,
            "by_backend": {
                name: {str(b): results[name][b] for b in BATCH_SIZES}
                for name in backends
            },
            "multiprocess_speedup_at_16": speedup_16,
            "cnative_speedup_at_16": cnative_speedup_16,
            "autotune": {
                "picked": tuned.to_dict(),
                "tuned_queries_per_second": tuned_qps,
                "default_queries_per_second": default_qps,
                "tuned_over_default": tuned_qps / default_qps,
            },
        },
    )

    # The tuner may only pick plans it verified bit-identical, and its
    # pick must not lose to the default it was tuned against (10%
    # timing-jitter slack).
    assert tuned_qps >= 0.9 * default_qps, (
        f"tuned plan slower than default: {tuned_qps:.1f} vs"
        f" {default_qps:.1f} q/s"
    )

    # The acceptance bars -- only meaningful when there are cores to
    # partition rows across: >= 2x batch-16 for multiprocess, >= 3x for
    # the native backend (which additionally needs a C toolchain).
    if cores >= 4:
        assert speedup_16 >= 2.0, (
            f"multiprocess batch-16 speedup only {speedup_16:.2f}x"
            f" on {cores} cores"
        )
        if cnative_ok:
            assert cnative_speedup_16 >= 3.0, (
                f"cnative batch-16 speedup only {cnative_speedup_16:.2f}x"
                f" on {cores} cores"
            )
