"""Figure 5-style demo: sample private queries and their results.

Runs a batch of benchmark queries -- conceptual paraphrases, verbatim
keyword lookups, and exact-string (phone-number / address) searches --
through the complete private pipeline and prints the top URLs,
illustrating the paper's observation that embedding search shines on
conceptual queries and struggles on exact strings.

Run:  python examples/private_text_search.py
"""

import numpy as np

from repro import TiptoeConfig, TiptoeEngine
from repro.corpus import QueryBenchmark, SyntheticCorpus, SyntheticCorpusConfig


def main() -> None:
    corpus = SyntheticCorpus.generate(
        SyntheticCorpusConfig(
            num_docs=800, num_topics=16, vocab_size=1200, seed=3
        )
    )
    engine = TiptoeEngine.build(
        corpus.texts(),
        corpus.urls(),
        TiptoeConfig(target_cluster_size=20, url_batch_size=15),
        rng=np.random.default_rng(0),
    )
    client = engine.new_client(np.random.default_rng(1))

    bench = QueryBenchmark.generate(
        corpus,
        9,
        np.random.default_rng(2),
        family_weights={"conceptual": 0.4, "lexical": 0.3, "exact": 0.3},
    )
    found_by_family: dict[str, list[bool]] = {}
    for q in bench.queries:
        result = client.search(q.text)
        doc_ids = engine.result_doc_ids(result)
        rank = doc_ids.index(q.target_doc_id) + 1 if q.target_doc_id in doc_ids else None
        found_by_family.setdefault(q.family, []).append(rank is not None)
        print(f"\nQ ({q.family}): {q.text}")
        for url in result.urls()[:3]:
            print(f"   {url}")
        target_url = corpus.documents[q.target_doc_id].url
        status = f"rank {rank}" if rank else "not in returned batch"
        print(f"   [ground truth: {target_url} -- {status}]")

    print("\nHit rates by query family (conceptual > exact, per SS8.2):")
    for family, hits in sorted(found_by_family.items()):
        print(f"  {family:12s} {sum(hits)}/{len(hits)}")


if __name__ == "__main__":
    main()
