"""Private advertising (SS9): ads without tracking.

"Just as a client uses Tiptoe to fetch relevant webpages, a client
could use Tiptoe to fetch relevant textual ads" -- the ad network
embeds each ad, and the last protocol step privately fetches the ad
*text* instead of a URL.  The ad network learns nothing about the
query, so it cannot build an interest profile; its business model
(relevance-matched ads) still works.

This example indexes an ad inventory (ad copy as the document text,
the ad creative as the fetched metadata) and serves relevance-matched
ads for a few queries, privately.

Run:  python examples/private_ads.py
"""

import numpy as np

from repro import TiptoeConfig, TiptoeEngine
from repro.corpus import SyntheticCorpus, SyntheticCorpusConfig


def main() -> None:
    # The "ad inventory": synthetic docs play the ad copy; the
    # metadata the client fetches is the ad creative text.
    inventory = SyntheticCorpus.generate(
        SyntheticCorpusConfig(num_docs=400, num_topics=10, vocab_size=700, seed=9)
    )
    creatives = [
        f"AD #{doc.doc_id}: try {doc.text.split()[0]} today -- 20% off at {doc.url}"
        for doc in inventory.documents
    ]
    engine = TiptoeEngine.build(
        inventory.texts(),
        creatives,  # the URL slot carries the ad creative (SS9)
        TiptoeConfig(target_cluster_size=20, url_batch_size=12),
        rng=np.random.default_rng(0),
    )
    client = engine.new_client(np.random.default_rng(1))

    for doc_id in (11, 150, 320):
        interest = inventory.documents[doc_id].text[:50]
        result = client.search(interest)
        print(f"\nuser interest (hidden from the ad network): {interest!r}")
        print("matched ads:")
        for ad in result.urls()[:3]:
            print(f"  {ad}")

    print("\nEvery ad auction above ran on ciphertexts: the network saw")
    print("fixed-size encrypted queries and scanned its whole inventory,")
    print("so it learned nothing about the user's interests.")


if __name__ == "__main__":
    main()
