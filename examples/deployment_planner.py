"""Deployment planner: what would Tiptoe cost at your corpus size?

Uses the calibrated analytic cost model (SS8.5, Fig. 8) to print a
capacity plan -- per-query communication, compute, latency, AWS cost,
and a suggested server allocation -- for a corpus size given on the
command line (default: the paper's 364M-page C4 crawl).

Run:  python examples/deployment_planner.py [num_docs]
"""

import sys

from repro.evalx.baselines import CoeusModel
from repro.evalx.costmodel import GIB, TiptoeCostModel


def main() -> None:
    num_docs = int(float(sys.argv[1])) if len(sys.argv) > 1 else 364_000_000
    model = TiptoeCostModel()

    # Size the fleet like the paper: enough vCPUs to keep each online
    # phase under ~a second of compute, and every shard within ~10 GiB
    # of RAM (SS8.1) -- whichever needs more machines.
    index_bytes = num_docs * model.duplication * (
        model.dim / 2 + model.url_bytes_per_entry
    )
    rank_core_s = model.ranking_word_ops(num_docs) / model.ops_per_core_second
    url_core_s = model.url_word_ops(num_docs) / model.ops_per_core_second
    ranking_vcpus = max(4, 4 * round(rank_core_s / 0.9 / 4 + 0.5))
    url_vcpus = max(4, 4 * round(url_core_s / 0.3 / 4 + 0.5))
    servers = max(
        (ranking_vcpus + url_vcpus) // 4, round(index_bytes / (10 * GIB))
    )

    row = model.summary(
        num_docs, ranking_vcpus=ranking_vcpus, url_vcpus=url_vcpus
    )
    print(f"Tiptoe deployment plan for {num_docs:,} documents")
    print(f"  index size:          {index_bytes / GIB:8.1f} GiB")
    print(f"  suggested servers:   {servers:8,d} (r5.xlarge-class)")
    print(f"  clusters:            {row['clusters']:8,d} of ~{row['cluster_size']:,} docs")
    print("Per query:")
    print(f"  ahead-of-time comm:  {row['up_token_mib'] + row['down_token_mib']:8.1f} MiB")
    print(f"  online comm:         {row['online_mib']:8.1f} MiB")
    print(f"  server compute:      {row['core_seconds']:8.1f} core-s")
    print(f"  perceived latency:   {row['perceived_latency_s']:8.2f} s")
    print(f"  AWS cost:            ${row['aws_cost']:8.4f}")
    coeus = CoeusModel()
    print("For comparison, Coeus at the same scale would need:")
    print(f"  {coeus.communication_bytes(num_docs) / GIB:.1f} GiB of traffic,"
          f" {coeus.core_seconds(num_docs):,.0f} core-s,"
          f" ${coeus.aws_cost(num_docs):.2f}/query")


if __name__ == "__main__":
    main()
