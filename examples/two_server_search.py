"""The two-server (non-colluding) variant of SS9: ~1 MiB per query.

If the client can talk to two services that do not collude, it
secret-shares its query with a distributed point function instead of
encrypting it.  Each server runs the same linear scan as single-server
Tiptoe -- on plaintext integers -- and returns a share; the shares sum
to the scores.  Communication drops by ~50x.

This example runs the two-server ranking and URL retrieval over a
built index and compares the traffic against the single-server
deployment at paper scale.

Run:  python examples/two_server_search.py
"""

import numpy as np

from repro import TiptoeConfig, TiptoeEngine
from repro.corpus import SyntheticCorpus, SyntheticCorpusConfig
from repro.dpf import TwoServerPir, two_server_query_bytes
from repro.dpf.twoserver import two_server_rank
from repro.embeddings.quantize import quantize
from repro.evalx.costmodel import MIB, TiptoeCostModel


def main() -> None:
    corpus = SyntheticCorpus.generate(
        SyntheticCorpusConfig(num_docs=400, num_topics=10, vocab_size=700, seed=2)
    )
    engine = TiptoeEngine.build(
        corpus.texts(), corpus.urls(), TiptoeConfig(),
        rng=np.random.default_rng(0),
    )
    index = engine.index
    rng = np.random.default_rng(1)

    # Ranking: DPF-share the query, scan on both servers, sum shares.
    target = 33
    q_float = index.embeddings[target]
    cluster = index.clusters.nearest_cluster(q_float)
    q = quantize(q_float, index.config.quantization())
    scores, rank_up = two_server_rank(
        index.layout.matrix, index.layout.dim, q, cluster, rng
    )
    real = int(index.layout.cluster_sizes[cluster])
    best = int(np.argmax(scores[:real]))
    best_doc = index.layout.doc_id_of(cluster, best)
    print(f"two-server ranking picked doc {best_doc} (target {target})")

    # URL retrieval: two-server PIR over the same compressed batches.
    pir = TwoServerPir([b.payload for b in index.url_batches])
    position = index.layout.position_of(cluster, best)
    batch_idx = position // index.config.url_batch_size
    payload, url_up = pir.retrieve(batch_idx, rng)
    from repro.corpus.urls import UrlBatch

    urls = UrlBatch(payload=payload, doc_ids=()).decompress()
    print(f"retrieved URL: {urls[position]}")
    down = 2 * real * 8 + 2 * len(payload)
    print(f"measured traffic: {(rank_up + url_up + down):,} bytes total")

    # Paper-scale comparison (SS9's ~1 MiB estimate).
    est = two_server_query_bytes(
        num_clusters=8736, dim=192, cluster_size=50_000,
        num_batches=496_364, batch_bytes=40 * 1024,
    )
    single = TiptoeCostModel().total_bytes(364_000_000)
    print(f"\nat C4 scale: two-server = {est['total'] / MIB:.2f} MiB/query"
          f" vs single-server Tiptoe = {single / MIB:.1f} MiB/query"
          f" ({single / est['total']:.0f}x less traffic)")
    print("the trade: privacy now also requires the two providers not to"
          " collude.")


if __name__ == "__main__":
    main()
