"""Private recommendations (SS9): nearest neighbors beyond web search.

The paper notes Tiptoe's private nearest-neighbor protocol applies
directly to recommendation engines: the client holds a profile vector
(e.g., an average of its recently viewed items' embeddings) and
privately retrieves similar items from the provider's catalog -- the
provider learns nothing about the client's tastes.

This example builds an "item catalog" (documents standing in for
products), derives a client profile from three viewed items, and runs
the profile through the private ranking + URL pipeline.

Run:  python examples/private_recommendations.py
"""

import numpy as np

from repro import TiptoeConfig, TiptoeEngine
from repro.corpus import SyntheticCorpus, SyntheticCorpusConfig
from repro.core.ranking import RankingClient
from repro.embeddings.quantize import quantize


def main() -> None:
    catalog = SyntheticCorpus.generate(
        SyntheticCorpusConfig(num_docs=500, num_topics=10, vocab_size=800, seed=8)
    )
    engine = TiptoeEngine.build(
        catalog.texts(),
        catalog.urls(),
        TiptoeConfig(target_cluster_size=25),
        rng=np.random.default_rng(0),
    )
    index = engine.index

    # The client's history: three items it recently viewed.
    viewed = [17, 23, 31]
    print("Recently viewed items:")
    for item in viewed:
        print(f"  {catalog.documents[item].url}")

    # Profile = normalized mean of the viewed items' embeddings,
    # computed locally from the downloaded embedding model.
    profile = index.embeddings[viewed].mean(axis=0)
    profile /= np.linalg.norm(profile)

    # Run the profile through the private protocol directly.
    rng = np.random.default_rng(1)
    token = engine.mint_token(rng)
    keys, hints = token.consume()
    ranking = RankingClient(
        index.ranking_scheme,
        dim=index.layout.dim,
        num_clusters=index.layout.num_clusters,
    )
    cluster = int(np.argmax(index.clusters.centroids @ profile))
    query = ranking.build_query(
        keys["ranking"],
        quantize(profile, index.config.quantization()),
        cluster,
        rng,
    )
    answer = engine.ranking_answer(query)
    scores = ranking.decode_scores(keys["ranking"], answer, hints["ranking"])
    real = int(index.layout.cluster_sizes[cluster])
    order = np.argsort(-scores[:real])

    print("\nPrivately recommended items (viewed items excluded):")
    shown = 0
    for row in order:
        doc = index.layout.doc_id_of(cluster, int(row))
        if doc in viewed:
            continue
        print(f"  score={int(scores[row]):6d}  {catalog.documents[doc].url}")
        shown += 1
        if shown == 5:
            break
    print("\nThe provider computed these recommendations on ciphertexts:")
    print("it never saw the profile vector or which items were returned.")


if __name__ == "__main__":
    main()
