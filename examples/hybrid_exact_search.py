"""Hybrid search: semantic embeddings + exact keyword backends (SS9).

Embedding search struggles on phone numbers and street addresses; SS9
proposes typed keyword backends queried with keyword PIR.  This demo
runs both paths and merges them: the router extracts a canonical
entity from the query (if any), looks it up privately, and puts exact
hits ahead of the semantic ranking.

Run:  python examples/hybrid_exact_search.py
"""

import numpy as np

from repro import TiptoeConfig, TiptoeEngine
from repro.core.exact_backend import ExactSearchSuite
from repro.corpus import SyntheticCorpus, SyntheticCorpusConfig


def main() -> None:
    corpus = SyntheticCorpus.generate(
        SyntheticCorpusConfig(
            num_docs=500, num_topics=10, vocab_size=800,
            entity_fraction=0.5, seed=14,
        )
    )
    engine = TiptoeEngine.build(
        corpus.texts(), corpus.urls(), TiptoeConfig(),
        rng=np.random.default_rng(0),
    )
    print("Building the exact-keyword backends (keyword PIR stores)...")
    suite = ExactSearchSuite.build(corpus.documents)
    print(f"  backends: {suite.supported_types()}")

    client = engine.new_client(np.random.default_rng(1))
    rng = np.random.default_rng(2)

    target = corpus.documents_with_entities()[3]
    queries = [
        ("semantic", corpus.documents[7].text[:50]),
        ("exact entity", target.entity),
        ("freetext phone", f"call {target.entity[2:5]}-{target.entity[5:8]}-{target.entity[8:]}"
         if target.entity.startswith("ph") else target.entity),
    ]
    for label, query in queries:
        result = client.search(query)
        semantic_ids = engine.result_doc_ids(result)
        merged = suite.merge_results(query, semantic_ids, rng)
        print(f"\n[{label}] query: {query!r}")
        print(f"  semantic top-3 doc ids: {semantic_ids[:3]}")
        print(f"  hybrid  top-3 doc ids: {merged[:3]}")
        if label != "semantic":
            rank = merged.index(target.doc_id) + 1 if target.doc_id in merged else None
            print(f"  target doc {target.doc_id} at hybrid rank: {rank}")

    print("\nBoth lookups are private: the keyword backend, like the")
    print("semantic path, sees only fixed-size ciphertexts -- it cannot")
    print("even distinguish a hit from a miss.")


if __name__ == "__main__":
    main()
