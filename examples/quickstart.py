"""Quickstart: stand up a private search engine and run one query.

Builds a Tiptoe deployment over a small synthetic web corpus, then
performs a fully private search: the servers compute the answer on
ciphertexts only and learn nothing about the query string.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TiptoeConfig, TiptoeEngine
from repro.corpus import SyntheticCorpus, SyntheticCorpusConfig


def main() -> None:
    print("Generating a synthetic web corpus (600 documents)...")
    corpus = SyntheticCorpus.generate(
        SyntheticCorpusConfig(num_docs=600, num_topics=12, vocab_size=900, seed=1)
    )

    print("Running the data-loading batch jobs (embed, cluster, crypto)...")
    engine = TiptoeEngine.build(
        corpus.texts(),
        corpus.urls(),
        TiptoeConfig(),
        rng=np.random.default_rng(0),
    )
    index = engine.index
    print(
        f"  {index.num_docs} documents in {index.clusters.num_clusters}"
        f" clusters; {len(index.url_batches)} URL batches;"
        f" {engine.ranking_service.num_workers} ranking workers"
    )

    client = engine.new_client(np.random.default_rng(1))
    print("Fetching a query token (happens before the query exists)...")
    client.fetch_tokens(1)

    query = corpus.documents[42].text[:80]
    print(f"\nPrivately searching for: {query!r}")
    result = client.search(query)

    print(f"\nTop results (cluster {result.cluster} was probed -- privately):")
    for r in result.results[:5]:
        marker = "*" if engine.doc_id_of_position(r.position) == 42 else " "
        print(f" {marker} score={r.score:6d}  {r.url or '(outside batch)'}")

    print("\nPer-phase traffic (bytes up / down):")
    for phase, (up, down) in result.traffic.phase_summary().items():
        print(f"  {phase:8s} {up:10,d} / {down:,d}")
    print(f"Perceived latency (100 Mbps, 50 ms RTT): {result.perceived_latency:.2f} s")
    print("\nThe servers saw only fixed-size ciphertexts -- the query,")
    print("the probed cluster, and the fetched URLs all stayed hidden.")


if __name__ == "__main__":
    main()
