"""Text-to-image search (SS8.3): find images from a text description.

Builds the simulated CLIP-style joint embedding space over a synthetic
caption/image corpus (the LAION-400M stand-in), indexes the *image*
embeddings with Tiptoe, and privately retrieves images from text
queries -- the deployment the paper runs on 88 servers.

Run:  python examples/private_image_search.py
"""

import numpy as np

from repro import TiptoeConfig, TiptoeEngine
from repro.corpus import ImageCorpus
from repro.corpus.synthetic import SyntheticCorpusConfig
from repro.embeddings import HashingEmbedder
from repro.embeddings.joint import JointEmbedder


def main() -> None:
    print("Generating a synthetic image corpus (500 images + captions)...")
    images = ImageCorpus.generate(
        num_images=500,
        latent_dim=24,
        text_config=SyntheticCorpusConfig(
            num_docs=500, num_topics=25, vocab_size=1000, seed=6
        ),
        seed=6,
    )

    print("Aligning text and image modalities (the CLIP stand-in)...")
    joint = JointEmbedder.fit(
        HashingEmbedder(dim=48), images.captions(), images.latent_matrix()
    )
    embeddings = joint.embed_images(images.latent_matrix())

    print("Indexing image embeddings with Tiptoe (2x text dimension)...")
    engine = TiptoeEngine.build_from_embeddings(
        embeddings,
        images.urls(),
        query_embedder=joint,
        config=TiptoeConfig(embedding_dim=24, pca_dim=None),
        rng=np.random.default_rng(0),
    )
    client = engine.new_client(np.random.default_rng(1))

    hits = 0
    samples = list(range(0, 500, 100))
    for img_id in samples:
        caption = images.images[img_id].caption
        result = client.search(caption)
        top = engine.result_doc_ids(result)[:10]
        hit = img_id in top
        hits += int(hit)
        print(f"\nQ: {caption[:70]}...")
        for url in result.urls()[:3]:
            print(f"   {url}")
        print(f"   [own image in top 10: {'yes' if hit else 'no'}]")

    print(f"\nCaption-to-own-image recall@10: {hits}/{len(samples)}")
    print("All image retrievals were private: the servers never learned")
    print("the query text, its embedding, or which images were returned.")


if __name__ == "__main__":
    main()
